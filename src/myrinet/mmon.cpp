#include "myrinet/mmon.hpp"

#include <cstdio>

namespace hsfi::myrinet {

namespace {
void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}
}  // namespace

std::string render_map(const NetworkMap& map) {
  std::string out;
  out += "  port  mcp-address         physical-address\n";
  if (map.empty()) {
    out += "  (no nodes mapped)\n";
    return out;
  }
  for (const auto& e : map) {
    appendf(out, "  %-5u 0x%016llx  %s\n", static_cast<unsigned>(e.port),
            static_cast<unsigned long long>(e.mcp),
            to_string(e.eth).c_str());
  }
  return out;
}

std::string render_mcp_view(const Mcp& mcp) {
  std::string out;
  appendf(out, "mcp 0x%016llx on port %u (%s)\n",
          static_cast<unsigned long long>(mcp.config().address),
          static_cast<unsigned>(mcp.config().switch_port),
          mcp.acting_controller() ? "controller" : "leaf");
  out += render_map(mcp.network_map());
  return out;
}

std::string render_interface(const HostInterface& nic) {
  const auto& s = nic.stats();
  std::string out;
  appendf(out, "%s: sent=%llu delivered=%llu crc-err=%llu marker-err=%llu "
               "ring-ovfl=%llu txq-drop=%llu short=%llu\n",
          nic.name().c_str(), static_cast<unsigned long long>(s.frames_sent),
          static_cast<unsigned long long>(s.frames_delivered),
          static_cast<unsigned long long>(s.crc_errors),
          static_cast<unsigned long long>(s.marker_errors),
          static_cast<unsigned long long>(s.ring_overflows),
          static_cast<unsigned long long>(s.tx_queue_drops),
          static_cast<unsigned long long>(s.too_short));
  return out;
}

std::string render_switch(const Switch& sw) {
  std::string out;
  appendf(out, "switch %s\n", sw.name().c_str());
  out += "  port  routed  consumed  bad-route  long-tmo  slack-ovfl  stop  go\n";
  for (std::size_t p = 0; p < sw.num_ports(); ++p) {
    const auto s = sw.port_stats(p);
    appendf(out, "  %-5zu %-7llu %-9llu %-10llu %-9llu %-11llu %-5llu %llu\n",
            p, static_cast<unsigned long long>(s.packets_routed),
            static_cast<unsigned long long>(s.packets_consumed),
            static_cast<unsigned long long>(s.invalid_route),
            static_cast<unsigned long long>(s.long_timeouts),
            static_cast<unsigned long long>(s.slack_overflow),
            static_cast<unsigned long long>(s.flow_stops_sent),
            static_cast<unsigned long long>(s.flow_gos_sent));
  }
  return out;
}

}  // namespace hsfi::myrinet
