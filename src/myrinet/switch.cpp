#include "myrinet/switch.hpp"

#include "myrinet/packet.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hsfi::myrinet {

Switch::Switch(sim::Simulator& simulator, std::string name, Config config)
    : simulator_(simulator), name_(std::move(name)), config_(config) {
  ports_.reserve(config_.num_ports);
  for (std::size_t i = 0; i < config_.num_ports; ++i) {
    auto port = std::make_unique<Port>();
    port->sink.self = this;
    port->sink.port = i;
    port->slack = std::make_unique<SlackBuffer>(
        simulator_, config_.slack,
        [this, i](ControlSymbol c) { send_flow(i, c); });
    port->gate = std::make_unique<FlowGate>(
        simulator_, config_.short_timeout, [this, i] {
          const std::size_t owner = ports_[i]->owner_input;
          if (owner != Port::kFree) schedule_pump(owner);
        });
    ports_.push_back(std::move(port));
  }
}

Switch::~Switch() = default;

void Switch::attach_port(std::size_t port, link::Channel& rx,
                         link::Channel& tx) {
  assert(port < ports_.size());
  rx.attach(ports_[port]->sink);
  ports_[port]->tx = &tx;
}

Switch::PortStats Switch::port_stats(std::size_t port) const {
  assert(port < ports_.size());
  PortStats stats = ports_[port]->stats;
  stats.slack_overflow = ports_[port]->slack->overflow_drops();
  return stats;
}

SlackBuffer& Switch::input_slack(std::size_t port) {
  assert(port < ports_.size());
  return *ports_[port]->slack;
}

void Switch::send_flow(std::size_t port, ControlSymbol c) {
  Port& p = *ports_[port];
  if (p.tx == nullptr) return;
  if (c == ControlSymbol::kStop) ++p.stats.flow_stops_sent;
  if (c == ControlSymbol::kGo) ++p.stats.flow_gos_sent;
  p.tx->transmit(to_symbol(c));
}

void Switch::on_burst(std::size_t port, const link::Burst& burst) {
  Port& p = *ports_[port];
  const std::size_t n = burst.symbols.size();

  // Batched ingress: data runs between control symbols go into the slack
  // with one bulk insert each (the occupancy probe needs per-push samples,
  // so its presence forces the per-symbol path).
  if (burst.has_view() && !p.slack->has_probe()) {
    std::size_t i = 0;
    while (i < n) {
      const std::size_t c = link::find_next_control(burst, i);
      if (c > i) {
        const std::span<const link::Symbol> run(burst.symbols.data() + i,
                                                c - i);
        const std::size_t accepted = p.slack->push_run(run);
        // Rejected tail: per-symbol pushes keep exact drop accounting and
        // per-symbol overflow event timestamps.
        for (std::size_t j = i + accepted; j < c; ++j) {
          if (!p.slack->push(burst.symbols[j]) && port_event_) {
            port_event_(port, PortEvent::kSlackOverflow, burst.arrival(j));
          }
        }
        i = c;
      }
      if (i == n) break;
      const auto symbol = burst.symbols[i];
      const auto decoded = decode_control(symbol.data);
      if (decoded == ControlSymbol::kStop || decoded == ControlSymbol::kGo) {
        p.gate->on_flow(*decoded);
      } else if (!p.slack->push(symbol) && port_event_) {
        port_event_(port, PortEvent::kSlackOverflow, burst.arrival(i));
      }
      ++i;
    }
    schedule_pump(port);
    return;
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto symbol = burst.symbols[i];
    // Flow-control symbols received on this port steer this port's *output*
    // gate; they never enter the forwarding path.
    if (symbol.control) {
      const auto decoded = decode_control(symbol.data);
      if (decoded == ControlSymbol::kStop || decoded == ControlSymbol::kGo) {
        p.gate->on_flow(*decoded);
        continue;
      }
    }
    if (!p.slack->push(symbol) && port_event_) {
      port_event_(port, PortEvent::kSlackOverflow, burst.arrival(i));
    }
  }
  schedule_pump(port);
}

void Switch::schedule_pump(std::size_t port) {
  Port& p = *ports_[port];
  if (p.pump_scheduled) return;
  p.pump_scheduled = true;
  simulator_.schedule_in(0, [this, port] {
    ports_[port]->pump_scheduled = false;
    pump(port);
  });
}

bool Switch::acquire_output(std::size_t out, std::size_t in) {
  Port& o = *ports_[out];
  if (o.owner_input == Port::kFree) {
    o.owner_input = in;
    return true;
  }
  if (o.owner_input == in) return true;
  if (std::find(o.waiters.begin(), o.waiters.end(), in) == o.waiters.end()) {
    o.waiters.push_back(in);
  }
  return false;
}

void Switch::release_output(std::size_t out) {
  // Hand the output directly to the oldest waiter (round-robin fairness):
  // merely marking it free would let the releasing input re-acquire it in
  // the same pump pass and starve blocked inputs indefinitely.
  Port& o = *ports_[out];
  if (!o.waiters.empty()) {
    o.owner_input = o.waiters.front();
    o.waiters.pop_front();
    schedule_pump(o.owner_input);
  } else {
    o.owner_input = Port::kFree;
  }
}

bool Switch::output_ready(std::size_t out, std::size_t in,
                          std::size_t queued_chars) {
  Port& o = *ports_[out];
  if (o.tx == nullptr) return false;
  if (!o.gate->open()) return false;  // pump resumes via the gate callback
  const auto ahead_limit =
      config_.character_period *
      static_cast<sim::Duration>(config_.max_tx_ahead_chars);
  const sim::SimTime now = simulator_.now();
  const sim::SimTime channel_free = o.tx->transmitter_free_at();
  // Effective wire-commit time includes characters batched but not yet
  // handed to the channel (this pump pass runs in zero simulated time).
  const sim::SimTime free_at =
      (channel_free > now ? channel_free : now) +
      config_.character_period *
          static_cast<sim::Duration>(o.pending_chars + queued_chars);
  if (free_at > now + ahead_limit) {
    // Too much already committed to the wire; try again once it drains.
    Port& i = *ports_[in];
    if (!i.pump_scheduled) {
      i.pump_scheduled = true;
      simulator_.schedule_at(free_at - ahead_limit, [this, in] {
        ports_[in]->pump_scheduled = false;
        pump(in);
      });
    }
    return false;
  }
  return true;
}

void Switch::arm_long_timeout(std::size_t port) {
  Port& p = *ports_[port];
  p.long_timeout_event =
      simulator_.schedule_in(config_.long_timeout, [this, port] {
        Port& q = *ports_[port];
        q.long_timeout_event = sim::kInvalidEventId;
        if (q.state != InState::kConnected) return;
        // Reclaim the held path: terminate the downstream packet. "The
        // sending host will then terminate the packet and consume the
        // remainder of the unsent packet" — the sender resynchronizes at
        // its next packet boundary, so the input returns to idle and
        // treats what follows as a fresh header.
        ++q.stats.long_timeouts;
        if (port_event_) {
          port_event_(port, PortEvent::kLongTimeout, simulator_.now());
        }
        if (trace_ && trace_->enabled(sim::LogLevel::kWarn)) {
          trace_->add(simulator_.now(), sim::LogLevel::kWarn, name_,
                      "long-period timeout reclaimed input " +
                          std::to_string(port) + " -> output " +
                          std::to_string(q.out_port));
        }
        std::vector<link::Symbol> tail;
        if (q.held) tail.push_back(link::data_symbol(*q.held));
        tail.push_back(to_symbol(ControlSymbol::kGap));
        Port& o = *ports_[q.out_port];
        if (o.tx != nullptr) o.tx->transmit(tail);
        release_output(q.out_port);
        q.held.reset();
        q.state = InState::kIdle;
        schedule_pump(port);
      });
}

void Switch::close_connection(Port& p, bool emit_tail_crc) {
  if (p.long_timeout_event != sim::kInvalidEventId) {
    simulator_.cancel(p.long_timeout_event);
    p.long_timeout_event = sim::kInvalidEventId;
  }
  (void)emit_tail_crc;  // tail emission handled by the caller (batched)
  release_output(p.out_port);
  p.held.reset();
  p.state = InState::kIdle;
}

void Switch::pump(std::size_t port) {
  Port& p = *ports_[port];
  std::vector<link::Symbol>& batch = pump_batch_;
  batch.clear();
  std::size_t batch_out = Port::kFree;  // output the batch belongs to

  // Cached wire-readiness horizon: output_ready()'s arithmetic reduces to
  // "batch.size() <= cap" while its inputs hold still. Simulated time is
  // frozen for the whole pump pass, so the cache only invalidates when
  // pending_chars moves (flush), when a slack pop emits flow control (a GO
  // on this port's reverse channel shifts the shared transmitter horizon
  // if a port routes to itself), or when a new connection is acquired. On
  // a cache miss or failure, output_ready() itself is the authority — it
  // re-evaluates fresh and schedules the wake-up exactly as the
  // per-symbol path did.
  std::ptrdiff_t cap = -1;
  bool cap_valid = false;
  const auto recompute_cap = [&](const Port& o) {
    const auto ahead =
        config_.character_period *
        static_cast<sim::Duration>(config_.max_tx_ahead_chars);
    const sim::SimTime now = simulator_.now();
    const sim::SimTime channel_free = o.tx->transmitter_free_at();
    const sim::SimTime base = channel_free > now ? channel_free : now;
    const sim::Duration headroom = now + ahead - base;
    cap = headroom < 0
              ? std::ptrdiff_t{-1}
              : static_cast<std::ptrdiff_t>(headroom /
                                            config_.character_period) -
                    static_cast<std::ptrdiff_t>(o.pending_chars);
    cap_valid = true;
  };
  const auto pop_slack = [&] {
    const bool was_stopping = p.slack->stopping();
    p.slack->pop();
    if (p.slack->stopping() != was_stopping) cap_valid = false;
  };

  const auto flush = [&] {
    cap_valid = false;
    if (batch.empty() || batch_out == Port::kFree) return;
    Port& o = *ports_[batch_out];
    if (o.tx != nullptr) {
      o.pending_chars += batch.size();
      simulator_.schedule_in(
          config_.forwarding_latency,
          [this, out = batch_out, b = std::move(batch)]() mutable {
            Port& q = *ports_[out];
            q.pending_chars -= b.size() < q.pending_chars ? b.size()
                                                          : q.pending_chars;
            if (q.tx != nullptr) q.tx->transmit(b);
            batch_pool_.release(std::move(b));
          });
    }
    batch = batch_pool_.acquire();
  };

  for (;;) {
    const link::Symbol* front = p.slack->front();
    if (front == nullptr) break;

    switch (p.state) {
      case InState::kIdle: {
        if (front->control) {
          pop_slack();  // GAP/IDLE/noise between packets: transparent
          break;
        }
        const std::uint8_t head = front->data;
        const auto out = static_cast<std::size_t>(head & kRoutePortMask);
        if (out >= ports_.size() || ports_[out]->tx == nullptr) {
          ++p.stats.invalid_route;
          if (port_event_) {
            port_event_(port, PortEvent::kInvalidRoute, simulator_.now());
          }
          pop_slack();
          p.state = InState::kConsuming;
          break;
        }
        if (!acquire_output(out, port)) return;  // blocked: destination busy
        pop_slack();
        p.state = InState::kConnected;
        p.out_port = out;
        p.crc_in.reset();
        p.crc_in.update(head);
        p.crc_out.reset();
        p.held.reset();
        batch_out = out;
        cap_valid = false;
        arm_long_timeout(port);
        break;
      }
      case InState::kConnected: {
        Port& o = *ports_[p.out_port];
        if (!cap_valid || static_cast<std::ptrdiff_t>(batch.size()) > cap ||
            !o.gate->open()) {
          if (!output_ready(p.out_port, port, batch.size())) {
            flush();
            return;  // blocked: STOP from downstream or wire backlog
          }
          recompute_cap(o);
        }
        batch_out = p.out_port;
        if (!front->control) {
          const std::uint8_t b = front->data;
          pop_slack();
          if (p.held) {
            batch.push_back(link::data_symbol(*p.held));
            p.crc_in.update(*p.held);
            p.crc_out.update(*p.held);
          }
          p.held = b;
          break;
        }
        const auto decoded = decode_control(front->data);
        pop_slack();
        if (decoded == ControlSymbol::kGap) {
          // End of packet: the held byte is the incoming CRC; rewrite it
          // syndrome-preservingly for the shortened packet.
          if (p.held) {
            batch.push_back(link::data_symbol(
                patch_crc(*p.held, p.crc_in.value(), p.crc_out.value())));
          }
          batch.push_back(to_symbol(ControlSymbol::kGap));
          ++p.stats.packets_routed;
          flush();
          close_connection(p, /*emit_tail_crc=*/true);
          batch_out = Port::kFree;
        }
        // IDLE / undecodable inside a packet: transparent, not forwarded.
        break;
      }
      case InState::kConsuming: {
        const bool is_gap =
            front->control &&
            decode_control(front->data) == ControlSymbol::kGap;
        pop_slack();
        if (is_gap) {
          ++p.stats.packets_consumed;
          p.state = InState::kIdle;
        }
        break;
      }
    }
  }
  flush();
}

Switch::State Switch::capture_state() const {
  State state;
  state.ports.reserve(ports_.size());
  for (const auto& port : ports_) {
    const Port& p = *port;
    State::PortState ps;
    ps.slack = p.slack->capture_state();
    ps.gate = p.gate->capture_state();
    ps.in_state = static_cast<std::uint8_t>(p.state);
    ps.out_port = p.out_port;
    ps.held = p.held;
    ps.crc_in = p.crc_in;
    ps.crc_out = p.crc_out;
    ps.long_timeout_event = p.long_timeout_event;
    ps.owner_input = p.owner_input;
    ps.waiters = p.waiters;
    ps.pending_chars = p.pending_chars;
    ps.pump_scheduled = p.pump_scheduled;
    ps.stats = p.stats;
    state.ports.push_back(std::move(ps));
  }
  return state;
}

void Switch::restore_state(const State& state) {
  assert(state.ports.size() == ports_.size());
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    Port& p = *ports_[i];
    const State::PortState& ps = state.ports[i];
    p.slack->restore_state(ps.slack);
    p.gate->restore_state(ps.gate);
    p.state = static_cast<InState>(ps.in_state);
    p.out_port = ps.out_port;
    p.held = ps.held;
    p.crc_in = ps.crc_in;
    p.crc_out = ps.crc_out;
    p.long_timeout_event = ps.long_timeout_event;
    p.owner_input = ps.owner_input;
    p.waiters = ps.waiters;
    p.pending_chars = ps.pending_chars;
    p.pump_scheduled = ps.pump_scheduled;
    p.stats = ps.stats;
  }
}

}  // namespace hsfi::myrinet
