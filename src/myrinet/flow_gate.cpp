#include "myrinet/flow_gate.hpp"

#include <utility>

namespace hsfi::myrinet {

FlowGate::FlowGate(sim::Simulator& simulator, sim::Duration short_timeout,
                   std::function<void()> on_resume)
    : simulator_(simulator),
      short_timeout_(short_timeout),
      on_resume_(std::move(on_resume)) {}

FlowGate::~FlowGate() { disarm_timeout(); }

void FlowGate::on_flow(ControlSymbol c) {
  switch (c) {
    case ControlSymbol::kStop:
      ++stops_;
      open_ = false;
      arm_timeout();
      break;
    case ControlSymbol::kGo:
      ++gos_;
      if (!open_) resume(/*by_timeout=*/false);
      break;
    case ControlSymbol::kIdle:
    case ControlSymbol::kGap:
      break;
  }
}

void FlowGate::arm_timeout() {
  disarm_timeout();
  timeout_event_ = simulator_.schedule_in(short_timeout_, [this] {
    timeout_event_ = sim::kInvalidEventId;
    if (!open_) resume(/*by_timeout=*/true);
  });
}

void FlowGate::disarm_timeout() {
  if (timeout_event_ != sim::kInvalidEventId) {
    simulator_.cancel(timeout_event_);
    timeout_event_ = sim::kInvalidEventId;
  }
}

void FlowGate::resume(bool by_timeout) {
  open_ = true;
  disarm_timeout();
  if (by_timeout) ++timeout_resumes_;
  if (on_resume_) on_resume_();
}

}  // namespace hsfi::myrinet
