#include "myrinet/slack_buffer.hpp"

#include <utility>

namespace hsfi::myrinet {

SlackBuffer::SlackBuffer(sim::Simulator& simulator, Config config,
                         std::function<void(ControlSymbol)> send_flow)
    : simulator_(simulator),
      config_(config),
      send_flow_(std::move(send_flow)) {}

SlackBuffer::~SlackBuffer() {
  if (refresh_event_ != sim::kInvalidEventId) simulator_.cancel(refresh_event_);
}

bool SlackBuffer::push(link::Symbol symbol) {
  if (queue_.size() >= config_.capacity) {
    ++drops_;
    // Overflow still matters for flow control: stay in stopped state.
    after_occupancy_change();
    return false;
  }
  queue_.push_back(symbol);
  after_occupancy_change();
  return true;
}

std::size_t SlackBuffer::push_run(std::span<const link::Symbol> symbols) {
  const std::size_t free =
      config_.capacity > queue_.size() ? config_.capacity - queue_.size() : 0;
  const std::size_t accepted = symbols.size() < free ? symbols.size() : free;
  if (accepted == 0) return 0;
  queue_.insert(queue_.end(), symbols.begin(),
                symbols.begin() + static_cast<std::ptrdiff_t>(accepted));
  // One watermark evaluation for the whole run is emission-equivalent to
  // per-push evaluation: stopping_ latches, so a high-watermark crossing
  // inside the run produces the same single STOP at the same simulated
  // time either way.
  after_occupancy_change();
  return accepted;
}

std::optional<link::Symbol> SlackBuffer::pop() {
  if (queue_.empty()) return std::nullopt;
  link::Symbol s = queue_.front();
  queue_.pop_front();
  after_occupancy_change();
  return s;
}

void SlackBuffer::after_occupancy_change() {
  if (!stopping_ && queue_.size() >= config_.high_watermark) {
    stopping_ = true;
    emit(ControlSymbol::kStop);
    arm_refresh();
  } else if (stopping_ && queue_.size() <= config_.low_watermark) {
    stopping_ = false;
    if (refresh_event_ != sim::kInvalidEventId) {
      simulator_.cancel(refresh_event_);
      refresh_event_ = sim::kInvalidEventId;
    }
    emit(ControlSymbol::kGo);
  } else if (probe_) {
    probe_(simulator_.now(), queue_.size(), std::nullopt);
  }
}

void SlackBuffer::emit(ControlSymbol c) {
  if (probe_) probe_(simulator_.now(), queue_.size(), c);
  if (send_flow_) send_flow_(c);
}

void SlackBuffer::arm_refresh() {
  if (config_.stop_refresh <= 0) return;
  refresh_event_ = simulator_.schedule_in(config_.stop_refresh, [this] {
    refresh_event_ = sim::kInvalidEventId;
    if (!stopping_) return;
    emit(ControlSymbol::kStop);
    arm_refresh();
  });
}

}  // namespace hsfi::myrinet
