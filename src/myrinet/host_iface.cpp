#include "myrinet/host_iface.hpp"

#include <utility>

namespace hsfi::myrinet {

HostInterface::HostInterface(sim::Simulator& simulator, std::string name,
                             Config config)
    : simulator_(simulator),
      name_(std::move(name)),
      config_(config),
      gate_(simulator, config.short_timeout, [this] { schedule_pump_tx(); }) {
  deframer_.on_frame([this](std::vector<std::uint8_t> frame, sim::SimTime when) {
    handle_frame(std::move(frame), when);
  });
  deframer_.on_flow([this](ControlSymbol c, sim::SimTime) {
    gate_.on_flow(c);
  });
}

HostInterface::~HostInterface() = default;

void HostInterface::attach(link::Channel& rx, link::Channel& tx) {
  rx.attach(*this);
  tx_ = &tx;
}

bool HostInterface::send(const Packet& packet) {
  return send_raw(serialize(packet));
}

bool HostInterface::send_raw(std::vector<std::uint8_t> packet_bytes) {
  if (tx_queue_.size() >= config_.tx_queue_frames) {
    ++stats_.tx_queue_drops;
    return false;
  }
  tx_queue_.push_back(std::move(packet_bytes));
  schedule_pump_tx();
  return true;
}

void HostInterface::schedule_pump_tx() {
  if (tx_pump_scheduled_) return;
  tx_pump_scheduled_ = true;
  simulator_.schedule_in(0, [this] {
    tx_pump_scheduled_ = false;
    pump_tx();
  });
}

void HostInterface::pump_tx() {
  if (tx_ == nullptr) return;
  const auto ahead_limit =
      config_.character_period *
      static_cast<sim::Duration>(config_.max_tx_ahead_chars);
  for (;;) {
    if (!gate_.open()) return;  // resumes via the gate callback
    if (tx_offset_ >= tx_current_.size()) {
      if (tx_queue_.empty()) return;
      std::vector<std::uint8_t> bytes = std::move(tx_queue_.front());
      tx_queue_.pop_front();
      if (tx_mutator_) bytes = tx_mutator_(std::move(bytes));
      frame_symbols_into(bytes, tx_current_);
      tx_offset_ = 0;
    }
    const sim::SimTime free_at = tx_->transmitter_free_at();
    if (free_at > simulator_.now() + ahead_limit) {
      if (!tx_pump_scheduled_) {
        tx_pump_scheduled_ = true;
        simulator_.schedule_at(free_at - ahead_limit, [this] {
          tx_pump_scheduled_ = false;
          pump_tx();
        });
      }
      return;
    }
    const std::size_t n =
        std::min(config_.chunk_symbols, tx_current_.size() - tx_offset_);
    tx_->transmit(
        std::span<const link::Symbol>(tx_current_.data() + tx_offset_, n));
    tx_offset_ += n;
    if (tx_offset_ >= tx_current_.size()) {
      ++stats_.frames_sent;
      tx_current_.clear();
      tx_offset_ = 0;
    }
  }
}

void HostInterface::on_burst(const link::Burst& burst) {
  deframer_.feed_burst(burst);
}

void HostInterface::handle_frame(std::vector<std::uint8_t> frame,
                                 sim::SimTime when) {
  Delivered parsed = parse_delivered(frame);
  switch (parsed.status) {
    case DeliveryStatus::kCrcError:
      ++stats_.crc_errors;
      if (rx_error_) rx_error_(RxError::kCrcError, when);
      return;
    case DeliveryStatus::kMarkerError:
      ++stats_.marker_errors;  // consumed and handled as an error
      if (rx_error_) rx_error_(RxError::kMarkerError, when);
      return;
    case DeliveryStatus::kTooShort:
      ++stats_.too_short;
      if (rx_error_) rx_error_(RxError::kTooShort, when);
      return;
    case DeliveryStatus::kOk:
      break;
  }
  if (rx_ring_.size() >= config_.rx_ring_frames) {
    ++stats_.ring_overflows;
    if (rx_error_) rx_error_(RxError::kRingOverflow, when);
    return;
  }
  rx_ring_.push_back(std::move(parsed));
  schedule_ring_drain();
}

void HostInterface::schedule_ring_drain() {
  if (rx_drain_scheduled_ || rx_ring_.empty()) return;
  rx_drain_scheduled_ = true;
  simulator_.schedule_in(config_.rx_processing_time, [this] {
    rx_drain_scheduled_ = false;
    if (rx_ring_.empty()) return;
    Delivered frame = std::move(rx_ring_.front());
    rx_ring_.pop_front();
    ++stats_.frames_delivered;
    if (deliver_) deliver_(std::move(frame), simulator_.now());
    schedule_ring_drain();
  });
}

void HostInterface::reset_for_campaign() {
  stats_ = Stats{};
  tx_queue_.clear();
  tx_current_.clear();
  tx_offset_ = 0;
  rx_ring_.clear();
  deframer_.abort_frame();
}

}  // namespace hsfi::myrinet
