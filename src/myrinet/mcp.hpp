// The Myrinet Control Program (MCP) and its mapping protocol.
//
// Paper §4.1: "Each MCP on a network is given a unique 64-bit address, and
// the MCP with the highest address is responsible for mapping the network, a
// process which is performed once every second. Network mapping is done by
// first sending a scout message to all other ports of the switch which the
// mapping node connects to. If the mapper does not receive a response from a
// port, it assumes there is another switch..."
//
// This model implements single-switch mapping (the paper's Fig. 10 testbed
// is a single 8-port switch; recursive multi-switch scouting is out of the
// evaluated scope and noted in DESIGN.md):
//   - every map_period the acting controller scouts every switch port,
//   - nodes answer scouts with a reply carrying their 64-bit MCP address and
//     48-bit physical (Ethernet) address,
//   - after reply_window the controller announces the collected map to every
//     responding node; everyone installs it as their routing table.
//
// Controller election is emergent: every MCP initiates mapping, but seeing a
// scout or announcement from a *higher* MCP address suppresses its own
// initiation; within a round or two only the highest-address MCP maps.
//
// Failure behaviors exercised by the paper's campaigns:
//   - a corrupted scout/reply type (0x0005 -> 0x000x) is dropped by the
//     receiver; the silent node "is removed from the network... until the
//     next mapping packet" (§4.3.2);
//   - a reply whose MCP address was corrupted to equal the controller's
//     confuses the controller; it cannot build a consistent map and each
//     attempt produces a differently-damaged one (§4.3.3, Fig. 11);
//   - a reply corrupted to a fresh address is installed as if the machine
//     had been swapped (§4.3.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "myrinet/addr.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/packet.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {

/// Mapping-protocol subtypes (first payload byte of a kTypeMapping packet).
enum class MappingOp : std::uint8_t {
  kScout = 0x01,
  kReply = 0x02,
  kAnnounce = 0x03,
};

struct MapEntry {
  std::uint8_t port = 0;
  McpAddress mcp = 0;
  EthAddr eth{};

  friend bool operator==(const MapEntry&, const MapEntry&) = default;
};

/// The network map: one entry per known node, sorted by port.
using NetworkMap = std::vector<MapEntry>;

class Mcp {
 public:
  struct Config {
    McpAddress address = 0;   ///< unique 64-bit MCP address
    EthAddr eth{};            ///< this node's physical address
    std::uint8_t switch_port = 0;
    std::size_t switch_ports = 8;
    sim::Duration map_period = sim::milliseconds(1000);
    sim::Duration reply_window = sim::milliseconds(10);
    /// How long a scout/announce from a higher address suppresses our own
    /// mapping initiation.
    sim::Duration suppress_period = sim::milliseconds(3000);
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t rounds_initiated = 0;
    std::uint64_t maps_announced = 0;
    std::uint64_t confused_rounds = 0;  ///< duplicate-controller detected
    std::uint64_t scouts_answered = 0;
    std::uint64_t maps_installed = 0;
    std::uint64_t replies_collected = 0;
    std::uint64_t replies_late = 0;  ///< reply arrived after the window closed
  };

  Mcp(sim::Simulator& simulator, HostInterface& nic, Config config);

  Mcp(const Mcp&) = delete;
  Mcp& operator=(const Mcp&) = delete;

  /// Begins periodic mapping `phase` from now (stagger nodes to keep the
  /// simulation deterministic but not lock-stepped).
  void start(sim::Duration phase);

  /// Feed a delivered kTypeMapping frame (dispatch done by the host node).
  void on_mapping_frame(const Delivered& frame, sim::SimTime when);

  /// Route (switch hops only; marker excluded) to the node owning `dest`,
  /// from the installed map. nullopt when the node is not in the map —
  /// the paper's "removed from the network".
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> resolve_route(
      const EthAddr& dest) const;
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> resolve_route_port(
      std::uint8_t port) const;

  [[nodiscard]] const NetworkMap& network_map() const noexcept { return map_; }
  [[nodiscard]] bool acting_controller() const noexcept;
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] sim::SimTime last_map_install() const noexcept {
    return last_install_;
  }

  /// Optional event trace (rounds, installs, confusion); not owned.
  void set_trace(sim::TraceLog* trace) noexcept { trace_ = trace; }

  /// Called when a round ends confused (duplicate controller seen) and a
  /// damaged map is about to be announced — the paper's §4.3.3 mapping
  /// disruption, timestamped for the manifestation analyzer.
  using ConfusionHandler = std::function<void(sim::SimTime when)>;
  void on_confused_round(ConfusionHandler handler) {
    confused_ = std::move(handler);
  }

  /// Rewinds the RNG stream to the state a freshly constructed MCP with
  /// `seed` would have. Campaign runs reset this so a sequence of runs on
  /// one testbed equals the same runs on fresh testbeds.
  void reseed(std::uint64_t seed) noexcept {
    rng_ = sim::Rng(seed, config_.address);
  }

  /// Snapshot state. The RNG stream is included so a fork resumes the exact
  /// stream position — reseed() then rewinds it per-run, the same call a
  /// cold start makes. Round events (begin/finish) are self-rescheduling
  /// lambdas restored with the simulator queue.
  struct State {
    sim::Rng rng{0};
    NetworkMap map;
    sim::SimTime suppressed_until = -1;
    bool round_open = false;
    NetworkMap collected;
    bool duplicate_controller_seen = false;
    sim::SimTime last_install = -1;
    Stats stats;
  };

  [[nodiscard]] State capture_state() const {
    return State{rng_,        map_,
                 suppressed_until_, round_open_,
                 collected_,  duplicate_controller_seen_,
                 last_install_,     stats_};
  }
  void restore_state(const State& state) {
    rng_ = state.rng;
    map_ = state.map;
    suppressed_until_ = state.suppressed_until;
    round_open_ = state.round_open;
    collected_ = state.collected;
    duplicate_controller_seen_ = state.duplicate_controller_seen;
    last_install_ = state.last_install;
    stats_ = state.stats;
  }

 private:
  void begin_round();
  void finish_round();
  void handle_scout(const Delivered& frame);
  void handle_reply(const Delivered& frame);
  void handle_announce(const Delivered& frame);
  void install_map(NetworkMap map);
  void send_mapping(std::uint8_t dest_port, std::vector<std::uint8_t> payload);
  [[nodiscard]] NetworkMap damaged_map(const NetworkMap& collected);

  sim::Simulator& simulator_;
  HostInterface& nic_;
  Config config_;
  sim::Rng rng_;

  NetworkMap map_;
  sim::SimTime suppressed_until_ = -1;
  bool round_open_ = false;
  NetworkMap collected_;
  bool duplicate_controller_seen_ = false;
  sim::SimTime last_install_ = -1;
  Stats stats_;
  sim::TraceLog* trace_ = nullptr;
  ConfusionHandler confused_;
};

/// Payload builders, exposed so tests and the injector benches can construct
/// and recognize mapping traffic byte-for-byte.
std::vector<std::uint8_t> make_scout_payload(McpAddress mapper,
                                             std::uint8_t mapper_port);
std::vector<std::uint8_t> make_reply_payload(McpAddress replier,
                                             const EthAddr& eth,
                                             std::uint8_t replier_port);
std::vector<std::uint8_t> make_announce_payload(McpAddress mapper,
                                                const NetworkMap& map);

}  // namespace hsfi::myrinet
