// Myrinet control symbols and their drop-tolerant decoding.
//
// From the paper (§4.3.1): "STOP is represented as 0x0F, GO as 0x03 and GAP
// as 0x0C", control symbols keep a pairwise Hamming distance of at least two,
// and "symbols that suffer single 1 to 0 faults will still be detected
// correctly -- for example, 0x08 will still be recognized as STOP, while 0x02
// will be interpreted as GO."
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "link/symbol.hpp"

namespace hsfi::myrinet {

enum class ControlSymbol : std::uint8_t {
  kIdle = 0x00,  ///< keep-alive filler between meaningful symbols
  kGo = 0x03,    ///< flow control: resume transmission
  kGap = 0x0C,   ///< packet framing: previous symbol was the packet tail
  kStop = 0x0F,  ///< flow control: pause transmission
};

[[nodiscard]] constexpr std::uint8_t encoding(ControlSymbol c) noexcept {
  return static_cast<std::uint8_t>(c);
}

[[nodiscard]] constexpr link::Symbol to_symbol(ControlSymbol c) noexcept {
  return link::control_symbol(encoding(c));
}

[[nodiscard]] std::string_view to_string(ControlSymbol c) noexcept;

/// Decodes a received control character, tolerating 1->0 bit drops.
///
/// The decode table accepts every exact codeword, every single 1->0 drop of a
/// codeword (0x0E/0x0D/0x0B/0x07 -> STOP; 0x04 -> GAP; 0x02/0x01 -> GO), plus
/// the paper's explicitly stated 0x08 -> STOP (the paper gives 0x08 as an
/// example of a code "still recognized as STOP"; we reproduce its table
/// verbatim rather than derive one). Any other code is undecodable: the
/// receiver ignores it, exactly like line noise on a real channel.
[[nodiscard]] std::optional<ControlSymbol> decode_control(std::uint8_t code) noexcept;

}  // namespace hsfi::myrinet
