// mmon: the Myrinet monitoring view.
//
// The paper's campaigns watched "the status of the network and the
// associated information (like routing tables and control registers)...
// with the Myrinet monitoring program mmon". This module renders the same
// views from the simulated network: the installed network map (used to
// reproduce Fig. 11's before/after routing-table pictures) and per-port /
// per-interface counters.
#pragma once

#include <string>

#include "myrinet/host_iface.hpp"
#include "myrinet/mcp.hpp"
#include "myrinet/switch.hpp"

namespace hsfi::myrinet {

/// Renders a network map as an ASCII table, one row per known node.
[[nodiscard]] std::string render_map(const NetworkMap& map);

/// Renders the map a specific MCP currently believes in, with controller
/// status — the paper's Fig. 11 view.
[[nodiscard]] std::string render_mcp_view(const Mcp& mcp);

/// Renders send/receive/error counters of a host interface.
[[nodiscard]] std::string render_interface(const HostInterface& nic);

/// Renders per-port forwarding and flow-control counters of a switch.
[[nodiscard]] std::string render_switch(const Switch& sw);

}  // namespace hsfi::myrinet
