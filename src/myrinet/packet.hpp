// Myrinet packet format (paper Fig. 6).
//
// Wire layout, head to tail:
//
//   [route byte]*      one byte per switch hop; each switch strips the byte
//                      it consumes and uses its low bits as the output port.
//                      MSB = 1 means the next consumer is expected to be a
//                      switch, MSB = 0 a host interface.
//   [marker byte]      stripped by the destination host interface. Its MSB
//                      must be 0; "If the packet reaches a destination
//                      interface with the MSB set to one, the Myrinet
//                      standard specifies that the packet be consumed and
//                      handled as an error" (paper §4.3.2).
//   [type, 2 bytes]    big-endian packet type. 0x0004 = data, 0x0005 =
//                      mapping. (The paper says both "4-byte packet type"
//                      and "the 16-bit hexadecimal string 0005"; every
//                      concrete value it gives is 16-bit, so we use 2 bytes —
//                      recorded in DESIGN.md.)
//   [payload]*         arbitrary length.
//   [CRC-8, 1 byte]    trailing CRC over every preceding byte, recomputed
//                      (syndrome-preservingly) at each hop that strips bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "link/symbol.hpp"
#include "myrinet/crc8.hpp"

namespace hsfi::myrinet {

inline constexpr std::uint16_t kTypeData = 0x0004;
inline constexpr std::uint16_t kTypeMapping = 0x0005;

inline constexpr std::uint8_t kRouteMsb = 0x80;
inline constexpr std::uint8_t kRoutePortMask = 0x3F;

/// Route byte directing a switch to forward out `port`, telling it the next
/// hop is another switch.
[[nodiscard]] constexpr std::uint8_t route_to_switch(std::uint8_t port) noexcept {
  return static_cast<std::uint8_t>(kRouteMsb | (port & kRoutePortMask));
}

/// Route byte directing a switch to forward out `port`, next hop a host.
[[nodiscard]] constexpr std::uint8_t route_to_host(std::uint8_t port) noexcept {
  return static_cast<std::uint8_t>(port & kRoutePortMask);
}

/// A packet in its pre-serialization form.
struct Packet {
  std::vector<std::uint8_t> route;  ///< one byte per switch hop
  std::uint8_t marker = 0x00;       ///< destination marker; MSB must be 0
  std::uint16_t type = kTypeData;
  std::vector<std::uint8_t> payload;
};

/// Serializes header + payload and appends the correct trailing CRC-8.
[[nodiscard]] std::vector<std::uint8_t> serialize(const Packet& packet);

/// Converts packet bytes into data symbols (no framing GAP appended).
[[nodiscard]] std::vector<link::Symbol> to_symbols(
    std::span<const std::uint8_t> bytes);

enum class DeliveryStatus : std::uint8_t {
  kOk,
  kTooShort,      ///< fewer bytes than marker + type + CRC
  kCrcError,      ///< trailing CRC does not match
  kMarkerError,   ///< marker byte MSB set: "consumed and handled as an error"
};

[[nodiscard]] std::string_view to_string(DeliveryStatus status) noexcept;

/// A frame as it arrives at a destination host interface (route fully
/// stripped by switches: marker + type + payload + CRC remain).
struct Delivered {
  DeliveryStatus status = DeliveryStatus::kTooShort;
  std::uint8_t marker = 0;
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Validates and parses a frame delivered to a host interface.
[[nodiscard]] Delivered parse_delivered(std::span<const std::uint8_t> bytes);

}  // namespace hsfi::myrinet
