// Symbol-stream framing (paper Fig. 8).
//
// "Packets are separated by a GAP control symbol, which tells the Myrinet
// interface that the previous packet was a packet tail... There can be any
// positive number of GAP packets between data packets. However, GAP packets
// are not allowed to appear within packets."
//
// The Deframer turns a symbol stream back into frames: data symbols
// accumulate into the current frame; a GAP terminates a (non-empty) frame;
// IDLE and undecodable control codes are transparent; GO/STOP are flow
// control and reported to a separate handler, not framed.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "link/channel.hpp"
#include "link/symbol.hpp"
#include "myrinet/control.hpp"
#include "sim/time.hpp"

namespace hsfi::myrinet {

class Deframer {
 public:
  /// Called with the frame's bytes and the arrival time of its closing GAP.
  using FrameHandler =
      std::function<void(std::vector<std::uint8_t> frame, sim::SimTime when)>;
  /// Called for flow-control symbols (GO/STOP) as they arrive.
  using FlowHandler = std::function<void(ControlSymbol c, sim::SimTime when)>;

  void on_frame(FrameHandler handler) { frame_handler_ = std::move(handler); }
  void on_flow(FlowHandler handler) { flow_handler_ = std::move(handler); }

  /// Feeds one received symbol with its arrival time.
  void feed(link::Symbol symbol, sim::SimTime when);

  /// Feeds a whole burst. With the SoA view present, data runs between
  /// control symbols are appended to the open frame with one bulk insert
  /// per run; control symbols go through feed() with their exact arrival
  /// times. Equivalent to feeding every symbol individually.
  void feed_burst(const link::Burst& burst);

  /// Bytes accumulated in the (unterminated) current frame.
  [[nodiscard]] std::size_t open_frame_size() const noexcept {
    return current_.size();
  }

  /// Discards the current partial frame (used when an interface resets).
  void abort_frame() { current_.clear(); }

  // Counters for monitoring and tests.
  [[nodiscard]] std::uint64_t frames_emitted() const noexcept { return frames_; }
  [[nodiscard]] std::uint64_t ignored_control_codes() const noexcept {
    return ignored_;
  }

  /// Data-only snapshot state for fabric forks: the partial frame and the
  /// counters. Handlers are wiring, not state — they stay attached across
  /// restore (they bind the owning entity, which outlives the snapshot).
  struct State {
    std::vector<std::uint8_t> current;
    std::uint64_t frames = 0;
    std::uint64_t ignored = 0;
  };

  [[nodiscard]] State capture_state() const {
    return State{current_, frames_, ignored_};
  }
  void restore_state(const State& state) {
    current_ = state.current;
    frames_ = state.frames;
    ignored_ = state.ignored;
  }

 private:
  std::vector<std::uint8_t> current_;
  FrameHandler frame_handler_;
  FlowHandler flow_handler_;
  std::uint64_t frames_ = 0;
  std::uint64_t ignored_ = 0;
};

/// Serializes a packet's bytes plus its terminating GAP into symbols.
[[nodiscard]] std::vector<link::Symbol> frame_symbols(
    std::span<const std::uint8_t> packet_bytes);

/// Same, but reuses `out`'s storage (cleared first) — the NIC transmit
/// path frames every outgoing packet into one recycled buffer instead of
/// allocating per frame.
void frame_symbols_into(std::span<const std::uint8_t> packet_bytes,
                        std::vector<link::Symbol>& out);

}  // namespace hsfi::myrinet
