// Follows each injector firing to its downstream effect.
//
// The campaign runner feeds two deterministic event streams recorded in
// simulated time: injections (the device's trigger, paper §3.3) and
// observations (a monitor downstream saw a failure effect: a NIC counted a
// CRC or marker error, a host dropped a misaddressed frame, the switch
// reclaimed a held path, the mapper announced a damaged map, a sink
// received a corrupted payload). finalize() then classifies every firing
// inside the measurement window into exactly one Manifestation class by
// chronological correlation: each injection claims the earliest unclaimed
// observation at or after it within the correlation window; firings that
// claim nothing were masked. Observations no firing claims are secondary
// effects (one firing can cascade: a single lost GAP merges packets,
// overflows slack, and times the path out) and are reported separately so
// nothing is double-counted against the injection total.
//
// Determinism: both streams are produced by the single-threaded simulation
// core, so record order and timestamps are a pure function of the run's
// seed — the analysis is byte-identical across worker counts, like every
// other campaign artifact.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/manifestation.hpp"
#include "analysis/metrics.hpp"
#include "sim/time.hpp"

namespace hsfi::analysis {

class ManifestationAnalyzer {
 public:
  struct Config {
    /// How long after a firing an effect may surface and still be
    /// attributed to it. Must cover the slowest effect path — the switch's
    /// long-period timeout (~50 ms at 80 MB/s) — plus delivery slop.
    sim::Duration correlation_window = sim::milliseconds(60);
    /// Observations of the same class from the same source closer together
    /// than this are one episode (a slack overflow drops symbols at line
    /// rate; counting each symbol would manufacture thousands of
    /// "effects" from one firing). 0 disables coalescing.
    sim::Duration coalesce_interval = sim::microseconds(1);
  };

  struct Outcome {
    ManifestationBreakdown breakdown;
    /// Observations no firing claimed: cascade effects beyond the first,
    /// plus background noise present without any injection.
    std::uint64_t secondary_effects = 0;
    /// Firing -> first-effect delay for every non-masked firing.
    Histogram latency;
  };

  ManifestationAnalyzer();
  explicit ManifestationAnalyzer(Config config);

  /// Records one injector firing ("windows actually corrupted").
  void record_injection(sim::SimTime when);

  /// Records one downstream effect. `source` distinguishes monitors (NIC
  /// index, switch port, ...) so coalescing never merges simultaneous
  /// effects seen at different places.
  void record_observation(sim::SimTime when, Manifestation what,
                          std::uint32_t source = 0);

  [[nodiscard]] std::size_t injections_recorded() const noexcept {
    return injections_.size();
  }
  [[nodiscard]] std::size_t observations_recorded() const noexcept {
    return observations_.size();
  }

  /// Classifies the firings with window_begin < t <= window_end (matching
  /// the campaign's before/after counter snapshots, which settle through
  /// window_begin before reading). `expected_injections` is the campaign's
  /// authoritative firing count from the device's own statistics; firings
  /// whose timestamps were not seen (or were filtered) are classified
  /// kMasked so the breakdown always sums to it exactly.
  [[nodiscard]] Outcome finalize(sim::SimTime window_begin,
                                 sim::SimTime window_end,
                                 std::uint64_t expected_injections) const;

  void clear();

 private:
  struct Observation {
    sim::SimTime when = 0;
    Manifestation what = Manifestation::kMasked;
    std::uint32_t source = 0;
  };

  Config config_;
  std::vector<sim::SimTime> injections_;
  std::vector<Observation> observations_;
};

}  // namespace hsfi::analysis
