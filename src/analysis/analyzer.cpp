#include "analysis/analyzer.hpp"

#include <algorithm>

namespace hsfi::analysis {

ManifestationAnalyzer::ManifestationAnalyzer() : ManifestationAnalyzer(Config{}) {}

ManifestationAnalyzer::ManifestationAnalyzer(Config config)
    : config_(config) {}

void ManifestationAnalyzer::record_injection(sim::SimTime when) {
  injections_.push_back(when);
}

void ManifestationAnalyzer::record_observation(sim::SimTime when,
                                               Manifestation what,
                                               std::uint32_t source) {
  // Coalesce line-rate repeats (same effect, same monitor, back to back)
  // into one episode. The scan is bounded: an episode chain keeps its last
  // element at the tail of the recent records, so checking a handful of
  // trailing entries finds it.
  if (config_.coalesce_interval > 0) {
    const std::size_t lookback = observations_.size() > 16
                                     ? observations_.size() - 16
                                     : 0;
    for (std::size_t i = observations_.size(); i-- > lookback;) {
      auto& prev = observations_[i];
      if (when - prev.when > config_.coalesce_interval) break;
      if (prev.what == what && prev.source == source) {
        prev.when = when;  // extend the episode
        return;
      }
    }
  }
  observations_.push_back(Observation{when, what, source});
}

ManifestationAnalyzer::Outcome ManifestationAnalyzer::finalize(
    sim::SimTime window_begin, sim::SimTime window_end,
    std::uint64_t expected_injections) const {
  std::vector<sim::SimTime> injs;
  injs.reserve(injections_.size());
  for (const auto t : injections_) {
    if (t > window_begin && t <= window_end) injs.push_back(t);
  }
  std::vector<Observation> obs;
  obs.reserve(observations_.size());
  for (const auto& o : observations_) {
    if (o.when > window_begin) obs.push_back(o);
  }
  // Simulation time is monotone, so both streams arrive sorted already;
  // stable_sort keeps equal-time records in recording order regardless.
  std::stable_sort(injs.begin(), injs.end());
  std::stable_sort(obs.begin(), obs.end(),
                   [](const Observation& a, const Observation& b) {
                     return a.when < b.when;
                   });

  Outcome out;
  // Greedy chronological assignment: injections ascending, each claims the
  // earliest unclaimed observation at or after it. Observations the scan
  // passes over can never match a later (even later-starting) injection,
  // so a single forward pointer suffices.
  std::size_t scan = 0;
  std::uint64_t matched = 0;
  for (const auto inj : injs) {
    while (scan < obs.size() && obs[scan].when < inj) ++scan;
    if (scan < obs.size() &&
        obs[scan].when - inj <= config_.correlation_window) {
      out.breakdown[obs[scan].what] += 1;
      out.latency.add(obs[scan].when - inj);
      ++matched;
      ++scan;
    }
    // else: masked, assigned below against the authoritative total.
  }
  out.secondary_effects = obs.size() - matched;

  // Reconcile against the device's own firing counter so the breakdown
  // sums to it exactly: firings whose timestamps we never saw are masked;
  // surplus timestamps (clock-edge disagreement, defensively) shed masked
  // first, then the most recent classes.
  const std::uint64_t seen = injs.size();
  if (expected_injections >= seen) {
    out.breakdown[Manifestation::kMasked] +=
        (seen - matched) + (expected_injections - seen);
  } else {
    std::uint64_t excess = seen - expected_injections;
    const std::uint64_t timestamp_masked = seen - matched;
    const std::uint64_t keep_masked =
        timestamp_masked > excess ? timestamp_masked - excess : 0;
    excess -= timestamp_masked - keep_masked;
    out.breakdown[Manifestation::kMasked] += keep_masked;
    for (std::size_t i = kManifestationCount; excess > 0 && i-- > 0;) {
      auto& c = out.breakdown.counts[i];
      const std::uint64_t cut = c < excess ? c : excess;
      c -= cut;
      excess -= cut;
    }
  }
  return out;
}

void ManifestationAnalyzer::clear() {
  injections_.clear();
  observations_.clear();
}

}  // namespace hsfi::analysis
