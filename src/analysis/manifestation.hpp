// The failure-manifestation taxonomy: what a single injector firing turned
// into, observed at the monitors downstream of the fault site.
//
// The paper's evaluation (§4.3–§4.4) reports injections by their
// *manifestation*, not by raw drop counters: corrupted characters are
// "dropped and lost, but not incorrectly passed on" (CRC), markers are
// "consumed and handled as an error", misaddressed frames are dropped by
// the destination, blocked paths recover "with a long-period timeout", and
// corrupted mapping replies leave the controller "unable to generate a
// consistent map". Each class below names one of those observable ends;
// kMasked is the paper's no-observable-effect case (the corrupted window
// fell into idle fill, inter-frame padding, or data nobody checked).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace hsfi::analysis {

enum class Manifestation : std::uint8_t {
  kMasked = 0,                  ///< no observable downstream effect
  kCrcDropped,                  ///< caught by the link CRC-8 at a NIC
  kMarkerError,                 ///< marker MSB set; consumed as an error
  kPayloadCorruptedDelivered,   ///< corruption survived to the application
  kMisrouted,                   ///< wrong address/route; dropped off-path
  kDroppedOther,                ///< slack/ring overflow, checksum, bad type
  kTimeout,                     ///< path held until a long-period timeout
  kMappingDisruption,           ///< mapping confused / node left the map
};

inline constexpr std::size_t kManifestationCount = 8;

/// All classes, in severity/report order (kMasked first).
[[nodiscard]] constexpr std::array<Manifestation, kManifestationCount>
all_manifestations() noexcept {
  return {Manifestation::kMasked,
          Manifestation::kCrcDropped,
          Manifestation::kMarkerError,
          Manifestation::kPayloadCorruptedDelivered,
          Manifestation::kMisrouted,
          Manifestation::kDroppedOther,
          Manifestation::kTimeout,
          Manifestation::kMappingDisruption};
}

/// Human-readable name, e.g. "crc_dropped".
[[nodiscard]] std::string_view to_string(Manifestation m) noexcept;

/// Stable JSONL field name, e.g. "m_crc_dropped".
[[nodiscard]] std::string_view jsonl_key(Manifestation m) noexcept;

/// Per-class counters. Every injector firing in a campaign lands in exactly
/// one class, so total() equals the campaign's injection count.
struct ManifestationBreakdown {
  std::array<std::uint64_t, kManifestationCount> counts{};

  [[nodiscard]] std::uint64_t& operator[](Manifestation m) noexcept {
    return counts[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] std::uint64_t operator[](Manifestation m) const noexcept {
    return counts[static_cast<std::size_t>(m)];
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto c : counts) sum += c;
    return sum;
  }

  ManifestationBreakdown& operator+=(const ManifestationBreakdown& o) noexcept {
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += o.counts[i];
    return *this;
  }

  friend bool operator==(const ManifestationBreakdown&,
                         const ManifestationBreakdown&) = default;
};

/// Compact one-line rendering of the non-zero classes, e.g.
/// "crc_dropped:12 timeout:1 masked:3" ("-" when all zero).
[[nodiscard]] std::string describe(const ManifestationBreakdown& b);

}  // namespace hsfi::analysis
