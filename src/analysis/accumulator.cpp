#include "analysis/accumulator.hpp"

namespace hsfi::analysis {

void CellStats::fold(bool ok, const ManifestationBreakdown& breakdown,
                     std::uint64_t run_injections,
                     std::uint64_t run_duplicates,
                     const Histogram* run_latency) {
  ++runs;
  if (!ok) return;
  ++ok_runs;
  injections += run_injections;
  duplicates += run_duplicates;
  manifestations += breakdown;
  if (run_latency != nullptr) latency.merge(*run_latency);
}

void CellStats::merge(const CellStats& other) {
  runs += other.runs;
  ok_runs += other.ok_runs;
  injections += other.injections;
  duplicates += other.duplicates;
  manifestations += other.manifestations;
  latency.merge(other.latency);
}

void CellAccumulator::add_run(const std::string& cell, bool ok,
                              const ManifestationBreakdown& manifestations,
                              std::uint64_t injections,
                              std::uint64_t duplicates,
                              const Histogram* latency) {
  cells_[cell].fold(ok, manifestations, injections, duplicates, latency);
}

const CellStats* CellAccumulator::find(const std::string& cell) const {
  const auto it = cells_.find(cell);
  return it == cells_.end() ? nullptr : &it->second;
}

}  // namespace hsfi::analysis
