#include "analysis/accumulator.hpp"

namespace hsfi::analysis {

void CellAccumulator::add_run(const std::string& cell, bool ok,
                              const ManifestationBreakdown& manifestations,
                              std::uint64_t injections,
                              std::uint64_t duplicates,
                              const Histogram* latency) {
  CellStats& stats = cells_[cell];
  ++stats.runs;
  if (!ok) return;
  ++stats.ok_runs;
  stats.injections += injections;
  stats.duplicates += duplicates;
  stats.manifestations += manifestations;
  if (latency != nullptr) stats.latency.merge(*latency);
}

const CellStats* CellAccumulator::find(const std::string& cell) const {
  const auto it = cells_.find(cell);
  return it == cells_.end() ? nullptr : &it->second;
}

}  // namespace hsfi::analysis
