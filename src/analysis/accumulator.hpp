// Cheap per-cell accumulation of campaign results for closed-loop
// controllers.
//
// The adaptive round barrier folds every finished run into its
// fault × direction cell; strategies then read the cumulative breakdown to
// decide the next batch (which cells still need replicates, where the
// masked → manifested transition sits). Deliberately minimal — a
// name-keyed map of plain counters plus the merged latency histogram — so
// reading it between rounds costs nothing next to a single run. Keys are a
// std::map, so iteration (and therefore every report built from it) is
// name-sorted and deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "analysis/manifestation.hpp"
#include "analysis/metrics.hpp"

namespace hsfi::analysis {

/// Cumulative totals for one cell. Folding is commutative and associative
/// (plain counter sums plus a bucket-wise histogram merge), so a cell built
/// record-by-record, in any order, or merged from per-shard partials is
/// bit-identical to one folded in a single batch — the property the
/// streaming monitor (monitor::StreamingCell) relies on.
struct CellStats {
  std::uint64_t runs = 0;        ///< runs folded in
  std::uint64_t ok_runs = 0;     ///< runs that completed (outcome ok)
  std::uint64_t injections = 0;  ///< injector firings across ok runs
  std::uint64_t duplicates = 0;  ///< surplus deliveries across ok runs
  ManifestationBreakdown manifestations;
  Histogram latency;             ///< merged firing -> first-effect delays

  /// Folds one run in. Counters only accumulate for ok runs (a timed-out
  /// run has no trustworthy counters), but `runs` counts every attempt so
  /// rates stay honest about failed work.
  void fold(bool ok, const ManifestationBreakdown& breakdown,
            std::uint64_t run_injections, std::uint64_t run_duplicates,
            const Histogram* run_latency = nullptr);

  /// Accumulates another cell's totals (shard merge). Histograms must share
  /// bounds, the same precondition as Histogram::merge.
  void merge(const CellStats& other);

  /// Firings with any observable downstream effect (everything but
  /// masked). The breakdown sums to `injections`, so this is the
  /// numerator of the cell's manifestation rate.
  [[nodiscard]] std::uint64_t manifested() const noexcept {
    return manifestations.total() -
           manifestations[Manifestation::kMasked];
  }

  friend bool operator==(const CellStats&, const CellStats&) = default;
};

/// Name-keyed per-cell totals. The caller picks the key (the adaptive
/// controller uses the "<fault>/<direction>" prefix of the run name).
class CellAccumulator {
 public:
  /// Folds one run into `cell` (see CellStats::fold for the ok-run rule).
  void add_run(const std::string& cell, bool ok,
               const ManifestationBreakdown& manifestations,
               std::uint64_t injections, std::uint64_t duplicates,
               const Histogram* latency = nullptr);

  [[nodiscard]] const CellStats* find(const std::string& cell) const;
  [[nodiscard]] const std::map<std::string, CellStats>& cells()
      const noexcept {
    return cells_;
  }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }
  void clear() { cells_.clear(); }

 private:
  std::map<std::string, CellStats> cells_;
};

}  // namespace hsfi::analysis
