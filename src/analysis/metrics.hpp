// A small deterministic metrics registry: named counters and fixed-bucket
// histograms over simulated-time durations.
//
// Everything here is driven by simulated-time records (the sim::TraceLog
// discipline), never wall clocks, so a campaign's metrics are identical
// regardless of worker count or host machine — the property every other
// campaign artifact (JSONL, reports) already has. Buckets are fixed at
// construction and iteration is name-sorted, so render() output is stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hsfi::analysis {

/// Fixed-bound histogram of simulated durations. Bounds are inclusive
/// upper edges in ascending order; values above the last bound land in an
/// implicit overflow bucket.
class Histogram {
 public:
  /// Default: decade buckets from 1 us to 100 ms — wide enough to span
  /// injector pipeline latency (~250 ns rounds into the first bucket) up
  /// to the switch's ~50 ms long-period timeout.
  Histogram();
  explicit Histogram(std::vector<sim::Duration> bounds);

  void add(sim::Duration value);
  /// Accumulates another histogram with identical bounds into this one.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] sim::Duration sum() const noexcept { return sum_; }
  [[nodiscard]] sim::Duration min() const noexcept { return min_; }
  [[nodiscard]] sim::Duration max() const noexcept { return max_; }
  /// Buckets are bounds().size() + 1 entries; the last is the overflow.
  [[nodiscard]] const std::vector<sim::Duration>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// One line per non-empty bucket, e.g. "  <= 1 us: 12".
  [[nodiscard]] std::string render() const;

  void clear();

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::vector<sim::Duration> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  sim::Duration sum_ = 0;
  sim::Duration min_ = 0;
  sim::Duration max_ = 0;
};

/// Name-keyed counters and histograms. Lookup creates on first use, so
/// call sites stay one-liners: registry.counter("injections")++.
class MetricsRegistry {
 public:
  [[nodiscard]] std::uint64_t& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Returns the named histogram, creating it with `bounds` (or the
  /// defaults when empty) on first use. Later calls ignore `bounds`.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<sim::Duration> bounds = {});
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Name-sorted plain-text dump (counters, then histograms).
  [[nodiscard]] std::string render() const;

  void clear() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hsfi::analysis
