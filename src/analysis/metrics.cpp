#include "analysis/metrics.hpp"

#include <algorithm>
#include <utility>

namespace hsfi::analysis {

namespace {

std::vector<sim::Duration> default_bounds() {
  return {sim::microseconds(1),    sim::microseconds(10),
          sim::microseconds(100),  sim::milliseconds(1),
          sim::milliseconds(10),   sim::milliseconds(100)};
}

}  // namespace

Histogram::Histogram() : Histogram(default_bounds()) {}

Histogram::Histogram(std::vector<sim::Duration> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::add(sim::Duration value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0 || other.bounds_ != bounds_) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

std::string Histogram::render() const {
  std::string out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out += "  ";
    out += i < bounds_.size() ? "<= " + sim::format_time(bounds_[i])
                              : "> " + sim::format_time(bounds_.back());
    out += ": ";
    out += std::to_string(buckets_[i]);
    out += '\n';
  }
  if (count_ == 0) out = "  (empty)\n";
  return out;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<sim::Duration> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(name, bounds.empty() ? Histogram() : Histogram(std::move(bounds)))
      .first->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::render() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    out += name;
    out += " (n=";
    out += std::to_string(hist.count());
    out += "):\n";
    out += hist.render();
  }
  return out;
}

}  // namespace hsfi::analysis
