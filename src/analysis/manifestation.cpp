#include "analysis/manifestation.hpp"

namespace hsfi::analysis {

std::string_view to_string(Manifestation m) noexcept {
  switch (m) {
    case Manifestation::kMasked: return "masked";
    case Manifestation::kCrcDropped: return "crc_dropped";
    case Manifestation::kMarkerError: return "marker_error";
    case Manifestation::kPayloadCorruptedDelivered:
      return "payload_corrupted_delivered";
    case Manifestation::kMisrouted: return "misrouted";
    case Manifestation::kDroppedOther: return "dropped_other";
    case Manifestation::kTimeout: return "timeout";
    case Manifestation::kMappingDisruption: return "mapping_disruption";
  }
  return "?";
}

std::string_view jsonl_key(Manifestation m) noexcept {
  switch (m) {
    case Manifestation::kMasked: return "m_masked";
    case Manifestation::kCrcDropped: return "m_crc_dropped";
    case Manifestation::kMarkerError: return "m_marker_error";
    case Manifestation::kPayloadCorruptedDelivered:
      return "m_payload_corrupted_delivered";
    case Manifestation::kMisrouted: return "m_misrouted";
    case Manifestation::kDroppedOther: return "m_dropped_other";
    case Manifestation::kTimeout: return "m_timeout";
    case Manifestation::kMappingDisruption: return "m_mapping_disruption";
  }
  return "m_unknown";
}

std::string describe(const ManifestationBreakdown& b) {
  std::string out;
  // Failure classes first, masked last: the interesting part leads.
  for (const auto m : all_manifestations()) {
    if (m == Manifestation::kMasked || b[m] == 0) continue;
    if (!out.empty()) out += ' ';
    out += to_string(m);
    out += ':';
    out += std::to_string(b[m]);
  }
  if (b[Manifestation::kMasked] != 0) {
    if (!out.empty()) out += ' ';
    out += "masked:";
    out += std::to_string(b[Manifestation::kMasked]);
  }
  return out.empty() ? "-" : out;
}

}  // namespace hsfi::analysis
