#include "host/udp.hpp"

namespace hsfi::host {

std::uint16_t ones_complement_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += static_cast<std::uint32_t>((bytes[i] << 8) | bytes[i + 1]);
  }
  if (i < bytes.size()) sum += static_cast<std::uint32_t>(bytes[i] << 8);
  while ((sum >> 16) != 0) sum = (sum & 0xFFFF) + (sum >> 16);
  const auto folded = static_cast<std::uint16_t>(~sum & 0xFFFF);
  return folded == 0 ? 0xFFFF : folded;
}

std::vector<std::uint8_t> encode_udp(const UdpDatagram& dgram) {
  std::vector<std::uint8_t> out;
  const auto length =
      static_cast<std::uint16_t>(kUdpHeaderSize + dgram.payload.size());
  out.reserve(length);
  out.push_back(static_cast<std::uint8_t>(dgram.src_port >> 8));
  out.push_back(static_cast<std::uint8_t>(dgram.src_port & 0xFF));
  out.push_back(static_cast<std::uint8_t>(dgram.dst_port >> 8));
  out.push_back(static_cast<std::uint8_t>(dgram.dst_port & 0xFF));
  out.push_back(static_cast<std::uint8_t>(length >> 8));
  out.push_back(static_cast<std::uint8_t>(length & 0xFF));
  out.push_back(0);  // checksum placeholder
  out.push_back(0);
  out.insert(out.end(), dgram.payload.begin(), dgram.payload.end());
  const std::uint16_t sum = ones_complement_checksum(out);
  out[6] = static_cast<std::uint8_t>(sum >> 8);
  out[7] = static_cast<std::uint8_t>(sum & 0xFF);
  return out;
}

UdpParseResult decode_udp(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kUdpHeaderSize) {
    return {std::nullopt, UdpParseError::kTooShort};
  }
  const auto length = static_cast<std::uint16_t>((bytes[4] << 8) | bytes[5]);
  if (length != bytes.size()) {
    return {std::nullopt, UdpParseError::kBadLength};
  }
  // Verify: re-sum with the checksum field zeroed.
  std::vector<std::uint8_t> copy(bytes.begin(), bytes.end());
  const auto wire_sum = static_cast<std::uint16_t>((copy[6] << 8) | copy[7]);
  copy[6] = 0;
  copy[7] = 0;
  if (ones_complement_checksum(copy) != wire_sum) {
    return {std::nullopt, UdpParseError::kBadChecksum};
  }
  UdpDatagram d;
  d.src_port = static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
  d.dst_port = static_cast<std::uint16_t>((bytes[2] << 8) | bytes[3]);
  d.payload.assign(bytes.begin() + kUdpHeaderSize, bytes.end());
  return {std::move(d), std::nullopt};
}

}  // namespace hsfi::host
