// UDP datagrams with the 16-bit one's-complement checksum.
//
// Paper §4.3.4: "Since UDP uses a 16-bit one's complement checksum, corrupt
// packets should be detected and dropped by the UDP layer. However, if the
// fault is manifested in a way that also satisfies the checksum, the
// incorrect packet should be passed through. Because the checksum is 16
// bits, this can be done by swapping bits that are 16 bits apart."
//
// The aliasing property that campaign exploits — one's-complement addition
// is commutative, so swapping two 16-bit-aligned words leaves the checksum
// unchanged — holds for this implementation and is unit-tested.
//
// Header layout (8 bytes, big-endian, RFC 768 shape):
//   src_port(2) dst_port(2) length(2) checksum(2), then the payload.
// The checksum covers header (checksum field as zero) + payload; no
// pseudo-header (addresses are protected by the enclosing data frame).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace hsfi::host {

inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::uint16_t kEchoPort = 7;

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;
};

/// RFC 1071 one's-complement sum of 16-bit words (odd tail zero-padded),
/// folded and complemented. 0x0000 results are transmitted as 0xFFFF.
[[nodiscard]] std::uint16_t ones_complement_checksum(
    std::span<const std::uint8_t> bytes);

/// Serializes header + payload, filling in length and checksum.
[[nodiscard]] std::vector<std::uint8_t> encode_udp(const UdpDatagram& dgram);

enum class UdpParseError : std::uint8_t {
  kTooShort,
  kBadLength,
  kBadChecksum,
};

struct UdpParseResult {
  std::optional<UdpDatagram> datagram;  ///< set on success
  std::optional<UdpParseError> error;   ///< set on failure
};

/// Validates length and checksum; returns the datagram or the reason it
/// must be dropped.
[[nodiscard]] UdpParseResult decode_udp(std::span<const std::uint8_t> bytes);

}  // namespace hsfi::host
