// Ping: the echo-based latency and liveness tool.
//
// The paper uses "the standard Unix ping program with the flood option" for
// load, and measures the injector's added latency "by a standard ping-pong
// packet-sending technique... with each side waiting for the other's packet
// before sending a packet" (§3.5, Table 2).
//
// This Pinger sends a UDP echo request, waits for the reply (or a timeout),
// records the round-trip time as seen through the host's interrupt-granular
// wall clock, and immediately sends the next request — flood ping and the
// Table 2 ping-pong are the same loop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "host/node.hpp"
#include "sim/simulator.hpp"

namespace hsfi::host {

class Pinger {
 public:
  struct Config {
    HostId target = 0;
    std::uint16_t src_port = 1024;
    std::size_t payload_size = 16;
    sim::Duration timeout = sim::milliseconds(10);
    /// Stop after this many requests (0 = run until stop()).
    std::uint64_t max_packets = 0;
  };

  struct Results {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t timeouts = 0;
    /// Sum of wall-clock RTTs (host-clock quantized), for averages.
    sim::Duration total_wall_rtt = 0;
    /// Sum of true simulated RTTs, for calibration in tests.
    sim::Duration total_sim_rtt = 0;

    [[nodiscard]] double average_wall_rtt_ns() const {
      return received == 0
                 ? 0.0
                 : sim::to_nanoseconds(total_wall_rtt) /
                       static_cast<double>(received);
    }
  };

  Pinger(sim::Simulator& simulator, Host& host, Config config);
  ~Pinger();

  Pinger(const Pinger&) = delete;
  Pinger& operator=(const Pinger&) = delete;

  void start();
  void stop();
  /// Invoked once max_packets have been answered or timed out.
  void on_done(std::function<void()> callback) { done_ = std::move(callback); }

  [[nodiscard]] const Results& results() const noexcept { return results_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void send_next();
  void on_reply(const UdpDatagram& reply, sim::SimTime when);
  void on_timeout();
  void finish();

  sim::Simulator& simulator_;
  Host& host_;
  Config config_;
  bool running_ = false;
  std::uint32_t seq_ = 0;
  sim::SimTime sent_sim_ = 0;
  sim::SimTime sent_wall_ = 0;
  sim::EventId timeout_event_ = sim::kInvalidEventId;
  Results results_;
  std::function<void()> done_;
};

}  // namespace hsfi::host
