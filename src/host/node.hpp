// A host node: the stack running on each testbed machine (paper Fig. 10's
// Linux PC and the two UltraSPARC workstations).
//
// Composition per node: a Myrinet host interface (NIC), the MCP (mapping
// participant), an address-learning cache binding small host ids to 48-bit
// physical addresses, and a UDP layer with the one's-complement checksum.
//
// Behaviors the campaigns rely on:
//   - "the node drops incoming packets that are misaddressed" — both the
//     physical-address and the host-id checks (§4.3.3);
//   - peers learn a node's physical address from the source field of
//     frames it sends, so corrupting that field in flight makes the node
//     "unreachable to all Ethernet-based network traffic" while Myrinet
//     mapping — keyed by relative ports — keeps working (§4.3.3);
//   - unrecognized packet types are dropped without touching network state
//     (§4.3.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "host/clock.hpp"
#include "host/frame.hpp"
#include "host/udp.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/mcp.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::host {

class Host {
 public:
  struct Config {
    HostId id = 0;
    myrinet::EthAddr eth{};
    myrinet::McpAddress mcp_address = 0;
    std::uint8_t switch_port = 0;
    std::size_t switch_ports = 8;
    /// Host-side cost to build and hand one datagram to the NIC.
    sim::Duration send_stack_time = sim::microseconds(5);
    /// Per-boot systematic offset added to every stack traversal, drawn
    /// uniformly from [0, boot_offset_span) at construction. Models the
    /// boot-dependent interrupt/timer alignment that buries the injector's
    /// ~250 ns latency in Table 2 ("the actual latency interval is getting
    /// lost in the granularity caused by the computer's interrupt
    /// handler").
    sim::Duration boot_offset_span = 0;
    sim::Duration map_period = sim::milliseconds(1000);
    sim::Duration map_reply_window = sim::milliseconds(10);
    HostClock::Params clock = {};
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t udp_sent = 0;         ///< accepted into the stack
    std::uint64_t udp_delivered = 0;    ///< handed to a bound socket
    std::uint64_t echo_replies = 0;
    std::uint64_t drop_unknown_peer = 0;   ///< no address for that host id
    std::uint64_t drop_unroutable = 0;     ///< not in the Myrinet map
    std::uint64_t drop_misaddressed = 0;   ///< wrong dst address or id
    std::uint64_t drop_bad_checksum = 0;
    std::uint64_t drop_bad_length = 0;
    std::uint64_t drop_malformed = 0;
    std::uint64_t drop_unknown_type = 0;   ///< reserved/corrupted packet type
    std::uint64_t drop_unbound_port = 0;
    std::uint64_t nic_refused = 0;         ///< NIC send queue full
  };

  using UdpHandler =
      std::function<void(HostId src, const UdpDatagram&, sim::SimTime when)>;

  /// Why the stack dropped a packet (send- or receive-side), mirroring the
  /// Stats counters one-for-one; the hook adds the timestamp the counters
  /// lack so the manifestation analyzer can correlate drops to firings.
  enum class DropReason : std::uint8_t {
    kUnknownPeer = 0,  ///< send: no address for that host id
    kUnroutable,       ///< send: not in the Myrinet map
    kMisaddressed,     ///< receive: wrong dst address or id
    kBadChecksum,
    kBadLength,
    kMalformed,
    kUnknownType,      ///< reserved/corrupted packet type
    kUnboundPort,
  };
  using DropHandler = std::function<void(DropReason reason, sim::SimTime when)>;

  Host(sim::Simulator& simulator, myrinet::HostInterface& nic, Config config);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Begins MCP mapping participation.
  void start(sim::Duration mapping_phase);

  /// Seeds the address cache (the campaign's "known good state").
  void seed_peer(HostId id, const myrinet::EthAddr& eth);
  [[nodiscard]] std::optional<myrinet::EthAddr> peer(HostId id) const;

  void bind(std::uint16_t port, UdpHandler handler);
  void on_drop(DropHandler handler) { drop_ = std::move(handler); }
  /// Answers echo datagrams (UDP port 7) by returning the payload — the
  /// ping responder.
  void enable_echo();

  /// Sends a datagram to `dest`. Returns false when it is dropped before
  /// reaching the wire (unknown peer, unroutable, NIC queue full).
  bool send_udp(HostId dest, UdpDatagram dgram);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void clear_stats() noexcept { stats_ = Stats{}; }

  /// Rewinds every per-host seed-derived stream to the state a freshly
  /// constructed host with `seed` would have: the MCP's RNG (Mcp::reseed),
  /// the host clock phase, and the per-boot stack offset. Re-deriving the
  /// latter two with the constructor's exact formulas makes the call a
  /// no-op on a cold-started testbed and seed-corrects a forked one, so
  /// snapshot/fork campaigns stay byte-identical to cold starts even with
  /// a nonzero boot_offset_span or clock tick.
  void reseed(std::uint64_t seed) noexcept {
    mcp_->reseed(seed);
    clock_ = HostClock(config_.clock, seed);
    boot_offset_ = 0;
    if (config_.boot_offset_span > 0) {
      sim::Rng rng(seed, 0xb007ULL);
      boot_offset_ = static_cast<sim::Duration>(
          rng.range(0, config_.boot_offset_span - 1));
    }
  }

  /// Snapshot state for fabric forks. Bound sockets are captured (their
  /// handlers reference this host or its workload driver, both of which
  /// outlive the snapshot within a campaign); the drop hook is per-run
  /// monitor wiring and is deliberately NOT part of the state.
  struct State {
    HostClock clock{HostClock::Params{}, 0};
    sim::Duration boot_offset = 0;
    myrinet::Mcp::State mcp;
    std::map<HostId, myrinet::EthAddr> peers;
    std::map<std::uint16_t, UdpHandler> sockets;
    sim::SimTime stack_free_at = 0;
    Stats stats;
  };

  [[nodiscard]] State capture_state() const {
    return State{clock_,   boot_offset_,   mcp_->capture_state(), peers_,
                 sockets_, stack_free_at_, stats_};
  }
  void restore_state(const State& state) {
    clock_ = state.clock;
    boot_offset_ = state.boot_offset;
    mcp_->restore_state(state.mcp);
    peers_ = state.peers;
    sockets_ = state.sockets;
    stack_free_at_ = state.stack_free_at;
    stats_ = state.stats;
  }

  [[nodiscard]] myrinet::Mcp& mcp() noexcept { return *mcp_; }
  [[nodiscard]] const myrinet::Mcp& mcp() const noexcept { return *mcp_; }
  [[nodiscard]] const HostClock& clock() const noexcept { return clock_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] myrinet::HostInterface& nic() noexcept { return nic_; }

 private:
  void on_deliver(myrinet::Delivered frame, sim::SimTime when);
  void on_data_frame(const myrinet::Delivered& frame, sim::SimTime when);
  void note_drop(DropReason reason, sim::SimTime when) {
    if (drop_) drop_(reason, when);
  }

  sim::Simulator& simulator_;
  myrinet::HostInterface& nic_;
  Config config_;
  HostClock clock_;
  sim::Duration boot_offset_ = 0;
  std::unique_ptr<myrinet::Mcp> mcp_;
  std::map<HostId, myrinet::EthAddr> peers_;
  std::map<std::uint16_t, UdpHandler> sockets_;
  sim::SimTime stack_free_at_ = 0;
  DropHandler drop_;
  Stats stats_;
};

}  // namespace hsfi::host
