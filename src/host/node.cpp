#include "host/node.hpp"

#include <utility>

namespace hsfi::host {

Host::Host(sim::Simulator& simulator, myrinet::HostInterface& nic,
           Config config)
    : simulator_(simulator),
      nic_(nic),
      config_(config),
      clock_(config.clock, config.seed) {
  if (config_.boot_offset_span > 0) {
    sim::Rng rng(config_.seed, 0xb007ULL);
    boot_offset_ =
        static_cast<sim::Duration>(rng.range(0, config_.boot_offset_span - 1));
  }
  myrinet::Mcp::Config mc;
  mc.address = config_.mcp_address;
  mc.eth = config_.eth;
  mc.switch_port = config_.switch_port;
  mc.switch_ports = config_.switch_ports;
  mc.map_period = config_.map_period;
  mc.reply_window = config_.map_reply_window;
  mc.seed = config_.seed;
  mcp_ = std::make_unique<myrinet::Mcp>(simulator_, nic_, mc);

  nic_.on_deliver([this](myrinet::Delivered frame, sim::SimTime when) {
    on_deliver(std::move(frame), when);
  });
}

void Host::start(sim::Duration mapping_phase) { mcp_->start(mapping_phase); }

void Host::seed_peer(HostId id, const myrinet::EthAddr& eth) {
  peers_[id] = eth;
}

std::optional<myrinet::EthAddr> Host::peer(HostId id) const {
  const auto it = peers_.find(id);
  if (it == peers_.end()) return std::nullopt;
  return it->second;
}

void Host::bind(std::uint16_t port, UdpHandler handler) {
  sockets_[port] = std::move(handler);
}

void Host::enable_echo() {
  bind(kEchoPort, [this](HostId src, const UdpDatagram& request, sim::SimTime) {
    UdpDatagram reply;
    reply.src_port = kEchoPort;
    reply.dst_port = request.src_port;
    reply.payload = request.payload;
    ++stats_.echo_replies;
    send_udp(src, std::move(reply));
  });
}

bool Host::send_udp(HostId dest, UdpDatagram dgram) {
  const auto dest_eth = peer(dest);
  if (!dest_eth) {
    ++stats_.drop_unknown_peer;
    note_drop(DropReason::kUnknownPeer, simulator_.now());
    return false;
  }
  const auto route = mcp_->resolve_route(*dest_eth);
  if (!route) {
    ++stats_.drop_unroutable;  // "removed from the network"
    note_drop(DropReason::kUnroutable, simulator_.now());
    return false;
  }

  DataFrame frame;
  frame.dst_eth = *dest_eth;
  frame.src_eth = config_.eth;
  frame.dst_id = dest;
  frame.src_id = config_.id;
  frame.proto = Proto::kUdp;
  frame.body = encode_udp(dgram);

  myrinet::Packet packet;
  packet.route = *route;
  packet.marker = 0x00;
  packet.type = myrinet::kTypeData;
  packet.payload = encode_frame(frame);

  ++stats_.udp_sent;
  // The stack serializes datagram preparation: each send occupies the host
  // for send_stack_time before the NIC sees it.
  const sim::SimTime now = simulator_.now();
  const sim::SimTime start = stack_free_at_ > now ? stack_free_at_ : now;
  stack_free_at_ = start + config_.send_stack_time + boot_offset_;
  simulator_.schedule_at(stack_free_at_, [this, packet = std::move(packet)] {
    if (!nic_.send(packet)) ++stats_.nic_refused;
  });
  return true;
}

void Host::on_deliver(myrinet::Delivered frame, sim::SimTime when) {
  if (frame.type == myrinet::kTypeMapping) {
    mcp_->on_mapping_frame(frame, when);
    return;
  }
  if (frame.type == myrinet::kTypeData) {
    on_data_frame(frame, when);
    return;
  }
  // "most packet types are reserved for relatively obscure protocols" — a
  // corrupted type falls here and is dropped without side effects.
  ++stats_.drop_unknown_type;
  note_drop(DropReason::kUnknownType, when);
}

void Host::on_data_frame(const myrinet::Delivered& frame, sim::SimTime when) {
  const auto parsed = parse_frame(frame.payload);
  if (!parsed) {
    ++stats_.drop_malformed;
    note_drop(DropReason::kMalformed, when);
    return;
  }
  if (parsed->dst_eth != config_.eth || parsed->dst_id != config_.id) {
    ++stats_.drop_misaddressed;
    note_drop(DropReason::kMisaddressed, when);
    return;
  }
  // Address learning: remember where this peer claims to live. This is the
  // surface the sender-address-corruption campaign attacks.
  peers_[parsed->src_id] = parsed->src_eth;

  if (parsed->proto != Proto::kUdp) {
    ++stats_.drop_malformed;
    note_drop(DropReason::kMalformed, when);
    return;
  }
  const auto udp = decode_udp(parsed->body);
  if (udp.error) {
    switch (*udp.error) {
      case UdpParseError::kBadChecksum:
        ++stats_.drop_bad_checksum;
        note_drop(DropReason::kBadChecksum, when);
        break;
      case UdpParseError::kBadLength:
        ++stats_.drop_bad_length;
        note_drop(DropReason::kBadLength, when);
        break;
      case UdpParseError::kTooShort:
        ++stats_.drop_malformed;
        note_drop(DropReason::kMalformed, when);
        break;
    }
    return;
  }
  const auto socket = sockets_.find(udp.datagram->dst_port);
  if (socket == sockets_.end()) {
    ++stats_.drop_unbound_port;
    note_drop(DropReason::kUnboundPort, when);
    return;
  }
  ++stats_.udp_delivered;
  socket->second(parsed->src_id, *udp.datagram, when);
}

}  // namespace hsfi::host
