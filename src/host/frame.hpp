// The data-frame layout hosts exchange inside Myrinet data packets.
//
// Physical addresses "are 48-bit Ethernet addresses corresponding to
// individual Myrinet ports" (paper §4.3.3); on top of them the stack keeps
// small host identifiers (the role IP addresses played on the paper's
// testbed) so that address-learning — and its corruption — behaves like
// the real system: a node "drops incoming packets that are misaddressed".
//
// Layout inside a kTypeData Myrinet payload:
//   dst_eth(6) src_eth(6) dst_id(1) src_id(1) proto(1) body...
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "myrinet/addr.hpp"

namespace hsfi::host {

/// Small host identifier (the "IP" of the testbed).
using HostId = std::uint8_t;

enum class Proto : std::uint8_t {
  kUdp = 0x11,  ///< matching the IP protocol number for UDP
};

inline constexpr std::size_t kFrameHeaderSize = 6 + 6 + 1 + 1 + 1;

struct DataFrame {
  myrinet::EthAddr dst_eth{};
  myrinet::EthAddr src_eth{};
  HostId dst_id = 0;
  HostId src_id = 0;
  Proto proto = Proto::kUdp;
  std::vector<std::uint8_t> body;
};

[[nodiscard]] std::vector<std::uint8_t> encode_frame(const DataFrame& frame);
[[nodiscard]] std::optional<DataFrame> parse_frame(
    std::span<const std::uint8_t> bytes);

}  // namespace hsfi::host
