#include "host/traffic.hpp"

#include <utility>

namespace hsfi::host {

UdpFlood::UdpFlood(sim::Simulator& simulator, Host& host, Config config)
    : simulator_(simulator),
      host_(host),
      config_(config),
      rng_(config.seed, config.src_port) {}

UdpFlood::~UdpFlood() {
  if (event_ != sim::kInvalidEventId) simulator_.cancel(event_);
}

void UdpFlood::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void UdpFlood::stop() {
  running_ = false;
  if (event_ != sim::kInvalidEventId) {
    simulator_.cancel(event_);
    event_ = sim::kInvalidEventId;
  }
}

void UdpFlood::tick() {
  event_ = sim::kInvalidEventId;
  if (!running_) return;
  if (config_.max_packets != 0 && sent_ >= config_.max_packets) {
    running_ = false;
    return;
  }
  const std::size_t burst = config_.burst_size == 0 ? 1 : config_.burst_size;
  for (std::size_t i = 0; i < burst; ++i) {
    if (config_.max_packets != 0 && sent_ >= config_.max_packets) break;
    UdpDatagram dgram;
    dgram.src_port = config_.src_port;
    dgram.dst_port = config_.dst_port;
    dgram.payload.assign(config_.payload_size, config_.fill);
    ++sent_;
    host_.send_udp(config_.target, std::move(dgram));
  }
  sim::Duration wait = config_.interval * static_cast<sim::Duration>(burst);
  if (config_.jitter > 0.0) {
    const double span = config_.jitter * static_cast<double>(wait);
    wait += static_cast<sim::Duration>((rng_.uniform() - 0.5) * span);
    if (wait < 1) wait = 1;
  }
  event_ = simulator_.schedule_in(wait, [this] { tick(); });
}

UdpSink::UdpSink(Host& host, std::uint16_t port) {
  host.bind(port, [this](HostId src, const UdpDatagram& dgram,
                         sim::SimTime when) {
    ++received_;
    bytes_ += dgram.payload.size();
    last_ = when;
    if (tap_) tap_(src, dgram, when);
  });
}

}  // namespace hsfi::host
