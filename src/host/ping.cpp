#include "host/ping.hpp"

#include <utility>

namespace hsfi::host {

Pinger::Pinger(sim::Simulator& simulator, Host& host, Config config)
    : simulator_(simulator), host_(host), config_(config) {
  host_.bind(config_.src_port,
             [this](HostId, const UdpDatagram& reply, sim::SimTime when) {
               on_reply(reply, when);
             });
}

Pinger::~Pinger() {
  if (timeout_event_ != sim::kInvalidEventId) simulator_.cancel(timeout_event_);
}

void Pinger::start() {
  if (running_) return;
  running_ = true;
  send_next();
}

void Pinger::stop() {
  running_ = false;
  if (timeout_event_ != sim::kInvalidEventId) {
    simulator_.cancel(timeout_event_);
    timeout_event_ = sim::kInvalidEventId;
  }
}

void Pinger::send_next() {
  if (!running_) return;
  if (config_.max_packets != 0 && results_.sent >= config_.max_packets) {
    finish();
    return;
  }
  ++seq_;
  UdpDatagram request;
  request.src_port = config_.src_port;
  request.dst_port = kEchoPort;
  request.payload.resize(config_.payload_size, 0x5A);
  // Sequence number in the first four payload bytes.
  for (int i = 0; i < 4 && i < static_cast<int>(request.payload.size()); ++i) {
    request.payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seq_ >> (8 * (3 - i)));
  }
  sent_sim_ = simulator_.now();
  sent_wall_ = host_.clock().wall(sent_sim_);
  ++results_.sent;
  host_.send_udp(config_.target, std::move(request));
  timeout_event_ =
      simulator_.schedule_in(config_.timeout, [this] { on_timeout(); });
}

void Pinger::on_reply(const UdpDatagram& reply, sim::SimTime when) {
  if (!running_ || reply.payload.size() < 4) return;
  std::uint32_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    seq = (seq << 8) | reply.payload[static_cast<std::size_t>(i)];
  }
  if (seq != seq_) return;  // stale reply from a timed-out request
  if (timeout_event_ != sim::kInvalidEventId) {
    simulator_.cancel(timeout_event_);
    timeout_event_ = sim::kInvalidEventId;
  }
  ++results_.received;
  results_.total_sim_rtt += when - sent_sim_;
  results_.total_wall_rtt += host_.clock().wall(when) - sent_wall_;
  send_next();
}

void Pinger::on_timeout() {
  timeout_event_ = sim::kInvalidEventId;
  if (!running_) return;
  ++results_.timeouts;
  send_next();
}

void Pinger::finish() {
  running_ = false;
  if (done_) done_();
}

}  // namespace hsfi::host
