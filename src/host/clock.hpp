// Host wall-clock model with interrupt granularity.
//
// Paper §3.5 (Table 2): "The uncertainty is likely due to the small size of
// the added latency: the actual latency interval is getting lost in the
// granularity caused by the computer's interrupt handler."
//
// A HostClock reads simulated time quantized to the host timer tick with a
// per-boot phase, exactly the effect that buries a ~250 ns device latency
// under a microsecond-scale measurement spread.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hsfi::host {

class HostClock {
 public:
  struct Params {
    /// Timer/interrupt granularity (1.19 MHz PIT-era PCs ticked near 1 us
    /// once scaled; SPARCstations similar).
    sim::Duration tick = sim::microseconds(1);

    bool operator==(const Params&) const = default;
  };

  HostClock(Params params, std::uint64_t boot_seed)
      : params_(params), phase_(0) {
    sim::Rng rng(boot_seed, 0x1c0cULL);
    if (params_.tick > 0) {
      phase_ = static_cast<sim::Duration>(
          rng.range(0, params_.tick - 1));
    }
  }

  /// What gettimeofday() reports at simulated instant `now`.
  [[nodiscard]] sim::SimTime wall(sim::SimTime now) const noexcept {
    if (params_.tick <= 0) return now;
    return ((now + phase_) / params_.tick) * params_.tick;
  }

  [[nodiscard]] sim::Duration tick() const noexcept { return params_.tick; }
  [[nodiscard]] sim::Duration phase() const noexcept { return phase_; }

 private:
  Params params_;
  sim::Duration phase_;
};

}  // namespace hsfi::host
