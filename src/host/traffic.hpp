// Workload generators: the campaign's "simple UDP packet generation
// program" and its receiving counterpart.
//
// Paper §4.2: "Network loads were simulated using a simple UDP packet
// generation program, running concurrently with the standard Unix ping
// program with the flood option..." and §4.3.1: "The messages were UDP
// packets designed in such a way that the symbol mask we corrupted did not
// appear in the message itself."
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "host/node.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::host {

/// Sends fixed-size datagrams to one destination at a fixed interval.
class UdpFlood {
 public:
  struct Config {
    HostId target = 0;
    std::uint16_t src_port = 2048;
    std::uint16_t dst_port = 9;  ///< discard-style sink
    std::size_t payload_size = 64;
    sim::Duration interval = sim::microseconds(100);
    /// Byte the payload is filled with; chosen so the corrupted symbol mask
    /// "did not appear in the message itself".
    std::uint8_t fill = 0x5A;
    /// 0 = run until stop().
    std::uint64_t max_packets = 0;
    /// Datagrams emitted back to back per tick ("full capacity" bursts that
    /// collide at switch outputs and exercise STOP/GO flow control).
    std::size_t burst_size = 1;
    /// Uniform jitter applied to each tick, as a fraction of the interval,
    /// so periodic flows do not phase-lock.
    double jitter = 0.0;
    std::uint64_t seed = 1;
  };

  UdpFlood(sim::Simulator& simulator, Host& host, Config config);
  ~UdpFlood();

  UdpFlood(const UdpFlood&) = delete;
  UdpFlood& operator=(const UdpFlood&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void tick();

  sim::Simulator& simulator_;
  Host& host_;
  Config config_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  sim::EventId event_ = sim::kInvalidEventId;
  sim::Rng rng_;
};

/// Binds a port and counts what arrives (the receiving message program).
class UdpSink {
 public:
  UdpSink(Host& host, std::uint16_t port);

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] sim::SimTime last_arrival() const noexcept { return last_; }
  void reset() noexcept {
    received_ = 0;
    bytes_ = 0;
    last_ = 0;
  }

  /// Optional tap on every delivery.
  void on_receive(
      std::function<void(HostId, const UdpDatagram&, sim::SimTime)> tap) {
    tap_ = std::move(tap);
  }

 private:
  std::uint64_t received_ = 0;
  std::uint64_t bytes_ = 0;
  sim::SimTime last_ = 0;
  std::function<void(HostId, const UdpDatagram&, sim::SimTime)> tap_;
};

}  // namespace hsfi::host
