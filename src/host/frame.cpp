#include "host/frame.hpp"

namespace hsfi::host {

std::vector<std::uint8_t> encode_frame(const DataFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + frame.body.size());
  myrinet::put_eth(out, frame.dst_eth);
  myrinet::put_eth(out, frame.src_eth);
  out.push_back(frame.dst_id);
  out.push_back(frame.src_id);
  out.push_back(static_cast<std::uint8_t>(frame.proto));
  out.insert(out.end(), frame.body.begin(), frame.body.end());
  return out;
}

std::optional<DataFrame> parse_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderSize) return std::nullopt;
  DataFrame f;
  f.dst_eth = myrinet::get_eth(bytes, 0);
  f.src_eth = myrinet::get_eth(bytes, 6);
  f.dst_id = bytes[12];
  f.src_id = bytes[13];
  f.proto = static_cast<Proto>(bytes[14]);
  f.body.assign(bytes.begin() + kFrameHeaderSize, bytes.end());
  return f;
}

}  // namespace hsfi::host
