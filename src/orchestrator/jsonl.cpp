#include "orchestrator/jsonl.hpp"

#include <cmath>
#include <cstdio>

namespace hsfi::orchestrator {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

void JsonObject::add(std::string_view k, std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
}

void JsonObject::add_u64(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
}

void JsonObject::add_i64(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
}

void JsonObject::add_bool(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
}

void JsonObject::add_fixed(std::string_view k, double value, int decimals) {
  key(k);
  // JSON has no NaN/Infinity literals; printf would emit bare "nan"/"inf"
  // and corrupt the line for every standard parser.
  if (!std::isfinite(value)) {
    body_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  body_ += buf;
}

}  // namespace hsfi::orchestrator
