#include "orchestrator/campaign_file.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "fc/frame.hpp"
#include "myrinet/control.hpp"
#include "nftape/faults.hpp"
#include "orchestrator/json_value.hpp"
#include "sim/rng.hpp"

namespace hsfi::orchestrator {

namespace {

using myrinet::ControlSymbol;

[[noreturn]] void bail(const std::string& what) {
  throw CampaignFileError("campaign file: " + what);
}

// ---------------------------------------------------------------------------
// Typed field extraction with context-carrying errors.

std::string field_str(const JsonValue& v, const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kString) bail(ctx + " must be a string");
  return v.text;
}

double field_num(const JsonValue& v, const std::string& ctx) {
  double out = 0;
  if (!v.as_double(out)) bail(ctx + " must be a number");
  return out;
}

std::uint64_t field_u64(const JsonValue& v, const std::string& ctx) {
  std::uint64_t out = 0;
  if (!v.as_u64(out)) bail(ctx + " must be a non-negative integer");
  return out;
}

bool field_bool(const JsonValue& v, const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kBool) bail(ctx + " must be a boolean");
  return v.boolean;
}

/// Millisecond / microsecond fields accept fractions; everything lands on
/// the picosecond Duration grid via nanoseconds, so "0.5" ms is exact.
sim::Duration field_ms(const JsonValue& v, const std::string& ctx) {
  const double ms = field_num(v, ctx);
  if (ms < 0) bail(ctx + " must be non-negative");
  return sim::nanoseconds(std::llround(ms * 1e6));
}

sim::Duration field_us(const JsonValue& v, const std::string& ctx) {
  const double us = field_num(v, ctx);
  if (us <= 0) bail(ctx + " must be positive");
  return sim::nanoseconds(std::llround(us * 1e3));
}

// ---------------------------------------------------------------------------
// Target settings: the overlay applied defaults-then-target.

struct GridPoint {
  std::string name;
  std::optional<sim::Duration> udp_interval;
  std::optional<std::size_t> burst_size;
  std::optional<std::size_t> payload_size;
};

struct TargetSettings {
  std::optional<std::string> name;
  std::optional<nftape::Medium> medium;
  std::optional<std::vector<std::string>> faults;
  std::optional<std::vector<FaultDirection>> directions;
  std::optional<std::size_t> replicates;
  std::optional<sim::Duration> duration, warmup, drain;
  std::optional<sim::Duration> startup_settle, map_period;
  std::optional<sim::Duration> udp_interval;
  std::optional<std::size_t> burst_size, payload_size;
  std::optional<double> jitter;
  std::optional<bool> program_via_serial;
  std::optional<std::vector<GridPoint>> grid;
  std::optional<scenario::ScenarioSpec> scenario;

  /// Overlay: fields set in `over` replace this one's.
  void apply(const TargetSettings& over) {
    const auto take = [](auto& dst, const auto& src) {
      if (src.has_value()) dst = src;
    };
    take(name, over.name);
    take(medium, over.medium);
    take(faults, over.faults);
    take(directions, over.directions);
    take(replicates, over.replicates);
    take(duration, over.duration);
    take(warmup, over.warmup);
    take(drain, over.drain);
    take(startup_settle, over.startup_settle);
    take(map_period, over.map_period);
    take(udp_interval, over.udp_interval);
    take(burst_size, over.burst_size);
    take(payload_size, over.payload_size);
    take(jitter, over.jitter);
    take(program_via_serial, over.program_via_serial);
    take(grid, over.grid);
    take(scenario, over.scenario);
  }
};

FaultDirection parse_direction(const std::string& s, const std::string& ctx) {
  if (s == "to-switch") return FaultDirection::kToSwitch;
  if (s == "from-switch") return FaultDirection::kFromSwitch;
  if (s == "both") return FaultDirection::kBoth;
  bail(ctx + ": unknown direction '" + s +
       "' (want to-switch, from-switch, or both)");
}

GridPoint parse_grid_point(const JsonValue& v, const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kObject) bail(ctx + " must be an object");
  GridPoint p;
  for (const auto& [key, value] : v.fields) {
    const std::string fctx = ctx + "." + key;
    if (key == "name") {
      p.name = field_str(value, fctx);
    } else if (key == "udp_interval_us") {
      p.udp_interval = field_us(value, fctx);
    } else if (key == "burst_size") {
      p.burst_size = static_cast<std::size_t>(field_u64(value, fctx));
    } else if (key == "payload_size") {
      p.payload_size = static_cast<std::size_t>(field_u64(value, fctx));
    } else {
      bail("unknown key '" + fctx + "'");
    }
  }
  if (p.name.empty()) bail(ctx + " needs a non-empty \"name\"");
  return p;
}

/// The "scenario" block: a registry name alone resolves to the built-in
/// step program; an explicit "steps" array defines a custom one. Medium
/// compatibility is checked at resolve_target, where the medium is known.
scenario::ScenarioSpec parse_scenario(const JsonValue& v,
                                      const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kObject) bail(ctx + " must be an object");
  scenario::ScenarioSpec spec;
  const JsonValue* steps = nullptr;
  std::string steps_ctx;
  for (const auto& [key, value] : v.fields) {
    const std::string fctx = ctx + "." + key;
    if (key == "name") {
      spec.name = field_str(value, fctx);
    } else if (key == "steps") {
      if (value.kind != JsonValue::Kind::kArray) {
        bail(fctx + " must be an array of step objects");
      }
      steps = &value;
      steps_ctx = fctx;
    } else {
      bail("unknown key '" + fctx + "'");
    }
  }
  if (spec.name.empty()) bail(ctx + " needs a non-empty \"name\"");
  if (steps == nullptr) {
    const auto found = scenario::find_scenario(spec.name);
    if (!found) {
      bail(ctx + ": unknown scenario '" + spec.name +
           "' (run_sweep --list-scenarios prints the registry; or define "
           "\"steps\" inline)");
    }
    return *found;
  }
  if (steps->items.empty()) bail(steps_ctx + " must not be empty");
  for (std::size_t i = 0; i < steps->items.size(); ++i) {
    const auto& sv = steps->items[i];
    const std::string sctx = steps_ctx + "[" + std::to_string(i) + "]";
    if (sv.kind != JsonValue::Kind::kObject) bail(sctx + " must be an object");
    scenario::Step step;
    bool have_kind = false;
    bool have_at = false;
    for (const auto& [key, value] : sv.fields) {
      const std::string fctx = sctx + "." + key;
      if (key == "kind") {
        const std::string k = field_str(value, fctx);
        const auto parsed = scenario::parse_step_kind(k);
        if (!parsed) bail(fctx + ": unknown step kind '" + k + "'");
        step.kind = *parsed;
        have_kind = true;
      } else if (key == "at_ms") {
        step.at = field_ms(value, fctx);
        // Steps are window-relative; at 0 the firing would land exactly on
        // window_begin, which finalize's (begin, end] window excludes.
        if (step.at <= 0) bail(fctx + " must be positive");
        have_at = true;
      } else if (key == "node") {
        step.node = static_cast<std::uint32_t>(field_u64(value, fctx));
      } else if (key == "count") {
        const auto n = field_u64(value, fctx);
        if (n == 0) bail(fctx + " must be positive");
        step.count = n;
      } else {
        bail("unknown key '" + fctx + "'");
      }
    }
    if (!have_kind) bail(sctx + " needs a \"kind\"");
    if (!have_at) bail(sctx + " needs a positive \"at_ms\"");
    spec.steps.push_back(step);
  }
  return spec;
}

TargetSettings parse_target_settings(const JsonValue& v,
                                     const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kObject) bail(ctx + " must be an object");
  TargetSettings s;
  for (const auto& [key, value] : v.fields) {
    const std::string fctx = ctx + "." + key;
    if (key == "name") {
      s.name = field_str(value, fctx);
    } else if (key == "medium") {
      const std::string m = field_str(value, fctx);
      const auto parsed = nftape::parse_medium(m);
      if (!parsed) bail(fctx + ": unknown medium '" + m + "'");
      s.medium = *parsed;
    } else if (key == "faults") {
      if (value.kind != JsonValue::Kind::kArray) {
        bail(fctx + " must be an array of fault names");
      }
      std::vector<std::string> names;
      for (const auto& item : value.items) {
        names.push_back(field_str(item, fctx + "[]"));
      }
      if (names.empty()) bail(fctx + " must not be empty");
      s.faults = std::move(names);
    } else if (key == "directions") {
      if (value.kind != JsonValue::Kind::kArray) {
        bail(fctx + " must be an array of directions");
      }
      std::vector<FaultDirection> dirs;
      for (const auto& item : value.items) {
        dirs.push_back(parse_direction(field_str(item, fctx + "[]"), fctx));
      }
      if (dirs.empty()) bail(fctx + " must not be empty");
      s.directions = std::move(dirs);
    } else if (key == "replicates") {
      const auto n = field_u64(value, fctx);
      if (n == 0) bail(fctx + " must be positive");
      s.replicates = static_cast<std::size_t>(n);
    } else if (key == "duration_ms") {
      s.duration = field_ms(value, fctx);
    } else if (key == "warmup_ms") {
      s.warmup = field_ms(value, fctx);
    } else if (key == "drain_ms") {
      s.drain = field_ms(value, fctx);
    } else if (key == "startup_settle_ms") {
      s.startup_settle = field_ms(value, fctx);
    } else if (key == "map_period_ms") {
      s.map_period = field_ms(value, fctx);
    } else if (key == "udp_interval_us") {
      s.udp_interval = field_us(value, fctx);
    } else if (key == "burst_size") {
      const auto n = field_u64(value, fctx);
      if (n == 0) bail(fctx + " must be positive");
      s.burst_size = static_cast<std::size_t>(n);
    } else if (key == "payload_size") {
      const auto n = field_u64(value, fctx);
      if (n == 0) bail(fctx + " must be positive");
      s.payload_size = static_cast<std::size_t>(n);
    } else if (key == "jitter") {
      const double j = field_num(value, fctx);
      if (j < 0 || j > 1) bail(fctx + " must be in [0, 1]");
      s.jitter = j;
    } else if (key == "program_via_serial") {
      s.program_via_serial = field_bool(value, fctx);
    } else if (key == "grid") {
      if (value.kind != JsonValue::Kind::kArray) {
        bail(fctx + " must be an array of intensity points");
      }
      std::vector<GridPoint> grid;
      for (std::size_t i = 0; i < value.items.size(); ++i) {
        grid.push_back(parse_grid_point(
            value.items[i], fctx + "[" + std::to_string(i) + "]"));
      }
      if (grid.empty()) bail(fctx + " must not be empty");
      s.grid = std::move(grid);
    } else if (key == "scenario") {
      s.scenario = parse_scenario(value, fctx);
    } else {
      bail("unknown key '" + fctx + "'");
    }
  }
  return s;
}

StrategySpec parse_strategy(const JsonValue& v, const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kObject) bail(ctx + " must be an object");
  StrategySpec s;
  for (const auto& [key, value] : v.fields) {
    const std::string fctx = ctx + "." + key;
    if (key == "name") {
      s.name = field_str(value, fctx);
    } else if (key == "knob") {
      const std::string k = field_str(value, fctx);
      const auto parsed = nftape::parse_knob(k);
      if (!parsed) bail(fctx + ": unknown knob '" + k + "'");
      s.knob = *parsed;
    } else if (key == "axis_lo") {
      s.axis_lo = field_num(value, fctx);
    } else if (key == "axis_hi") {
      s.axis_hi = field_num(value, fctx);
    } else if (key == "tolerance_us") {
      s.tolerance_us = field_num(value, fctx);
      if (s.tolerance_us <= 0) bail(fctx + " must be positive");
    } else if (key == "max_rounds") {
      s.max_rounds = static_cast<std::uint32_t>(field_u64(value, fctx));
    } else if (key == "target_count") {
      s.target_count = field_u64(value, fctx);
    } else {
      bail("unknown key '" + fctx + "'");
    }
  }
  if (s.name != "fixed" && s.name != "bisect" && s.name != "coverage") {
    bail(ctx + ".name must be fixed, bisect, or coverage, got '" + s.name +
         "'");
  }
  return s;
}

/// Resolves the overlaid settings into a runnable SweepSpec. The built-in
/// base is the run_sweep CLI's long-standing sweep configuration, so a
/// minimal spec file reproduces exactly what the flag-driven grid runs.
CampaignTarget resolve_target(const TargetSettings& s, std::size_t ordinal,
                              std::uint64_t file_seed) {
  CampaignTarget target;
  const nftape::Medium medium = s.medium.value_or(nftape::Medium::kMyrinet);
  target.name = s.name.value_or(std::string(nftape::to_string(medium)));
  if (target.name.empty() ||
      target.name.find_first_of("/:") != std::string::npos) {
    bail("target name '" + target.name +
         "' must be non-empty without '/' or ':'");
  }

  SweepSpec& sweep = target.sweep;
  sweep.name = target.name;
  sweep.base.medium = medium;
  // Disjoint per-target seed streams, independent of sharding.
  sweep.base_seed = sim::derive_seed(file_seed, ordinal);
  sweep.replicates = s.replicates.value_or(2);
  sweep.directions = s.directions.value_or(std::vector<FaultDirection>{
      FaultDirection::kFromSwitch, FaultDirection::kBoth});
  sweep.startup_settle = s.startup_settle.value_or(0);

  sweep.testbed.map_period = s.map_period.value_or(sim::milliseconds(100));
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  sweep.testbed.fc.rx_processing_time = sim::microseconds(1);

  sweep.base.warmup = s.warmup.value_or(sim::milliseconds(10));
  sweep.base.duration = s.duration.value_or(sim::milliseconds(60));
  sweep.base.drain = s.drain.value_or(sim::milliseconds(10));
  sweep.base.program_via_serial = s.program_via_serial.value_or(true);
  sweep.base.workload.udp_interval =
      s.udp_interval.value_or(sim::microseconds(12));
  sweep.base.workload.burst_size = s.burst_size.value_or(4);
  sweep.base.workload.payload_size = s.payload_size.value_or(256);
  sweep.base.workload.jitter = s.jitter.value_or(0.5);

  if (s.scenario.has_value()) {
    const auto scenario_medium = medium == nftape::Medium::kFc
                                     ? scenario::Medium::kFc
                                     : scenario::Medium::kMyrinet;
    if (!scenario::compatible(*s.scenario, scenario_medium)) {
      bail("target '" + target.name + "': scenario '" + s.scenario->name +
           "' has steps for the wrong medium (target is " +
           std::string(nftape::to_string(medium)) + ")");
    }
    sweep.base.scenario = *s.scenario;
  }

  auto axis = standard_fault_axis(medium);
  if (s.faults.has_value()) {
    for (const auto& want : *s.faults) {
      bool found = false;
      for (auto& f : axis) {
        if (f.name == want) {
          sweep.faults.push_back(f);
          found = true;
          break;
        }
      }
      if (!found) {
        bail("target '" + target.name + "': unknown fault '" + want +
             "' for medium " + std::string(nftape::to_string(medium)));
      }
    }
  } else {
    sweep.faults = std::move(axis);
  }

  if (s.grid.has_value()) {
    for (const auto& g : *s.grid) {
      IntensityPoint point;
      point.name = g.name;
      point.udp_interval =
          g.udp_interval.value_or(sweep.base.workload.udp_interval);
      point.burst_size = g.burst_size.value_or(sweep.base.workload.burst_size);
      point.payload_size =
          g.payload_size.value_or(sweep.base.workload.payload_size);
      sweep.intensities.push_back(std::move(point));
    }
  }
  return target;
}

}  // namespace

std::vector<FaultPoint> standard_fault_axis(nftape::Medium medium) {
  if (medium == nftape::Medium::kFc) {
    return {
        {"seu-00FF", nftape::random_bit_flip_seu(0x00FF),
         "random single-bit flips on the stream (LFSR-thinned, mask 00FF)"},
        {"fill-flip", nftape::fc_fill_corruption(0x5A, 0x003F),
         "bit flips anchored on payload fill bytes; CRC-32 must catch each"},
        {"comma-strike", nftape::fc_comma_strike(0x00FF),
         "corrupt K28.5 commas, breaking ordered-set alignment"},
        {"sofi3-blank",
         nftape::fc_ordered_set_corruption(fc::OrderedSet::kSofI3, 0x000F),
         "mangle SOFi3 delimiters so sequence-opening frames never start"},
        {"eoft-blank",
         nftape::fc_ordered_set_corruption(fc::OrderedSet::kEofT, 0x000F),
         "mangle EOFt delimiters so sequences never terminate cleanly"},
        {"rrdy-drop",
         nftape::fc_ordered_set_corruption(fc::OrderedSet::kRRdy, 0x000F),
         "corrupt R_RDY ordered sets, silently destroying BB credits"},
        {"domain-ee", nftape::fc_domain_corruption(0xEE, 0x0003),
         "rewrite the destination domain byte to EE (misrouting)"},
    };
  }
  const auto sym = [](ControlSymbol a, ControlSymbol b) {
    return nftape::control_symbol_corruption(a, b);
  };
  return {
      {"stop-idle", sym(ControlSymbol::kStop, ControlSymbol::kIdle),
       "STOP becomes IDLE: backpressure lost, slack buffers overrun"},
      {"stop-gap", sym(ControlSymbol::kStop, ControlSymbol::kGap),
       "STOP becomes GAP: backpressure lost inside packet gaps"},
      {"stop-go", sym(ControlSymbol::kStop, ControlSymbol::kGo),
       "STOP becomes GO: the halt order inverted into full speed"},
      {"gap-go", sym(ControlSymbol::kGap, ControlSymbol::kGo),
       "GAP becomes GO: packet boundaries dissolve into flow control"},
      {"gap-idle", sym(ControlSymbol::kGap, ControlSymbol::kIdle),
       "GAP becomes IDLE: tail-CRC boundaries vanish"},
      {"go-stop", sym(ControlSymbol::kGo, ControlSymbol::kStop),
       "GO becomes STOP: false backpressure wedges the sender"},
      {"marker-msb", nftape::marker_msb_corruption(),
       "set the destination marker MSB: consumed and handled as an error"},
      {"seu-00FF", nftape::random_bit_flip_seu(0x00FF),
       "random single-bit flips on the stream (LFSR-thinned, mask 00FF)"},
  };
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

CampaignFile parse_campaign_file(std::string_view text) {
  std::string error;
  const auto doc = parse_json(text, &error);
  if (!doc) bail(error);
  if (doc->kind != JsonValue::Kind::kObject) {
    bail("document must be an object");
  }

  CampaignFile file;
  file.digest = fnv1a64(text);
  TargetSettings defaults;
  const JsonValue* targets = nullptr;
  for (const auto& [key, value] : doc->fields) {
    if (key == "name") {
      file.name = field_str(value, "name");
    } else if (key == "seed") {
      file.base_seed = field_u64(value, "seed");
    } else if (key == "checkpoint_batch") {
      const auto n = field_u64(value, "checkpoint_batch");
      if (n == 0) bail("checkpoint_batch must be positive");
      file.checkpoint_batch = static_cast<std::size_t>(n);
    } else if (key == "defaults") {
      defaults = parse_target_settings(value, "defaults");
      if (defaults.name.has_value() || defaults.grid.has_value()) {
        bail("defaults cannot set name or grid (per-target only)");
      }
    } else if (key == "targets") {
      targets = &value;
    } else if (key == "strategy") {
      file.strategy = parse_strategy(value, "strategy");
    } else {
      bail("unknown key '" + key + "' at top level");
    }
  }
  if (file.name.empty()) bail("\"name\" is required");
  if (targets == nullptr || targets->kind != JsonValue::Kind::kArray ||
      targets->items.empty()) {
    bail("\"targets\" must be a non-empty array");
  }
  for (std::size_t i = 0; i < targets->items.size(); ++i) {
    TargetSettings merged = defaults;
    merged.apply(parse_target_settings(targets->items[i],
                                       "targets[" + std::to_string(i) + "]"));
    if (file.strategy.has_value() && merged.grid.has_value()) {
      bail("targets cannot carry a grid when a strategy steers the campaign");
    }
    auto target = resolve_target(merged, i, file.base_seed);
    for (const auto& existing : file.targets) {
      if (existing.name == target.name) {
        bail("duplicate target name '" + target.name + "'");
      }
    }
    file.targets.push_back(std::move(target));
  }
  return file;
}

CampaignFile load_campaign_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bail("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_campaign_file(text.str());
}

std::vector<RunSpec> expand_campaign(const CampaignFile& file) {
  std::vector<RunSpec> all;
  for (const auto& target : file.targets) {
    auto runs = expand(target.sweep);
    const std::size_t offset = all.size();
    for (auto& run : runs) {
      run.index += offset;
      run.campaign.name = target.name + ":" + run.campaign.name;
      all.push_back(std::move(run));
    }
  }
  return all;
}

}  // namespace hsfi::orchestrator
