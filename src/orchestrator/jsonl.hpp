// Minimal JSON emission for the orchestrator's result records.
//
// Hand-rolled on purpose: records are flat (no nesting beyond one object
// per line), field order must be stable so that sorted JSONL output is
// byte-comparable across worker counts, and the container image carries no
// JSON library. Only the emission half exists — the repo never parses JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hsfi::orchestrator {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Append-only single-level JSON object with insertion-ordered fields.
class JsonObject {
 public:
  void add(std::string_view key, std::string_view value);
  void add(std::string_view key, const char* value) {
    add(key, std::string_view(value));
  }
  void add_u64(std::string_view key, std::uint64_t value);
  void add_i64(std::string_view key, std::int64_t value);
  void add_bool(std::string_view key, bool value);
  /// Fixed-point decimal with `decimals` fractional digits — deterministic
  /// formatting, unlike shortest-round-trip double printing.
  void add_fixed(std::string_view key, double value, int decimals);

  /// The complete object, e.g. {"run":0,"outcome":"ok"}.
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_;
};

}  // namespace hsfi::orchestrator
