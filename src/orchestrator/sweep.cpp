#include "orchestrator/sweep.hpp"

#include "sim/rng.hpp"

namespace hsfi::orchestrator {

std::string_view to_string(FaultDirection d) noexcept {
  switch (d) {
    case FaultDirection::kToSwitch: return "to-switch";
    case FaultDirection::kFromSwitch: return "from-switch";
    case FaultDirection::kBoth: return "both";
  }
  return "?";
}

std::vector<RunSpec> expand(const SweepSpec& sweep) {
  // Empty axes collapse to one neutral point so the nest below is uniform.
  const std::vector<FaultPoint> faults =
      sweep.faults.empty()
          ? std::vector<FaultPoint>{{"baseline", std::nullopt, ""}}
          : sweep.faults;
  const std::vector<FaultDirection> directions =
      sweep.directions.empty()
          ? std::vector<FaultDirection>{FaultDirection::kBoth}
          : sweep.directions;
  const std::vector<IntensityPoint> intensities =
      sweep.intensities.empty()
          ? std::vector<IntensityPoint>{{"base", sweep.base.workload.udp_interval,
                                         sweep.base.workload.burst_size,
                                         sweep.base.workload.payload_size}}
          : sweep.intensities;
  const std::size_t replicates =
      sweep.replicates == 0 ? 1 : sweep.replicates;

  const sim::Duration startup =
      sweep.startup_settle > 0
          ? sweep.startup_settle
          : sweep.testbed.map_period + sweep.testbed.map_reply_window +
                sim::milliseconds(50);

  std::vector<RunSpec> runs;
  runs.reserve(faults.size() * directions.size() * intensities.size() *
               replicates);
  for (const auto& fault : faults) {
    for (const auto dir : directions) {
      for (const auto& intensity : intensities) {
        for (std::size_t rep = 0; rep < replicates; ++rep) {
          RunSpec run;
          run.index = runs.size();
          run.seed = sim::derive_seed(sweep.base_seed, run.index);
          run.startup_settle = startup;
          run.testbed = sweep.testbed;
          run.testbed.seed = run.seed;
          run.campaign = sweep.base;
          run.campaign.seed = run.seed;
          run.campaign.name = fault.name;
          run.campaign.name += '/';
          run.campaign.name += to_string(dir);
          run.campaign.name += '/';
          run.campaign.name += intensity.name;
          run.campaign.name += "/r";
          run.campaign.name += std::to_string(rep);
          run.campaign.workload.udp_interval = intensity.udp_interval;
          run.campaign.workload.burst_size = intensity.burst_size;
          run.campaign.workload.payload_size = intensity.payload_size;
          run.campaign.fault_to_switch.reset();
          run.campaign.fault_from_switch.reset();
          if (fault.config) {
            if (dir != FaultDirection::kFromSwitch) {
              run.campaign.fault_to_switch = fault.config;
            }
            if (dir != FaultDirection::kToSwitch) {
              run.campaign.fault_from_switch = fault.config;
            }
          }
          runs.push_back(std::move(run));
        }
      }
    }
  }
  return runs;
}

}  // namespace hsfi::orchestrator
