// Strict document-level JSON parser for campaign-spec files and
// checkpoint sidecars.
//
// The monitor's record parser (monitor/jsonl_reader.hpp) deliberately
// accepts only flat single-line objects; campaign files are nested
// documents (targets, grids, strategy blocks), so they need a real
// recursive parser. Same house rules, though: hand-rolled (the container
// image carries no JSON library), and strict — duplicate object keys,
// trailing garbage, and truncated documents are rejected outright rather
// than papered over, so a drifted or torn spec can never half-load.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsfi::orchestrator {

/// One parsed JSON value. Numbers keep their raw source token so callers
/// choose the representation: as_u64() refuses fractions, exponents, and
/// anything beyond 64 bits (a seed must round-trip exactly), while
/// as_double() accepts any JSON number.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// String value, or the raw number token ("12.5", "-3e2").
  std::string text;
  std::vector<JsonValue> items;  ///< array elements, in order
  /// Object members in source order; keys are unique (duplicates are a
  /// parse error).
  std::vector<std::pair<std::string, JsonValue>> fields;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Exact unsigned integer: false unless kind == kNumber and the token is
  /// a plain base-10 integer that fits std::uint64_t.
  [[nodiscard]] bool as_u64(std::uint64_t& out) const noexcept;
  /// Any JSON number, as double.
  [[nodiscard]] bool as_double(double& out) const noexcept;
};

/// Parses one complete JSON document. Returns nullopt on any violation —
/// syntax error, duplicate key, nesting deeper than 32, or bytes after the
/// document — with a byte-offset-annotated message in *error when given.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace hsfi::orchestrator
