// Declarative campaign files: one JSON document describing a whole
// distributed campaign — targets (media under test), per-target workload
// and window overrides, fault subsets, intensity grids, and an optional
// closed-loop strategy block — loaded by `run_sweep --spec`.
//
// This is the FINJ/NFTAPE campaign-config idea (see SNIPPETS: FIJ's
// config.json with global defaults overridden per target) applied to the
// simulated testbed: the file plus its base seed fully determine the
// expanded run set, so N sharded processes that load the same spec agree
// byte-for-byte on every run they partition between themselves.
//
// Parsing is strict in the monitor::parse_record tradition, but louder:
// a record tailer skips unknown fields because the emitter may be newer,
// while a campaign file is operator input — an unknown or mistyped key
// means the operator's intent would be silently ignored, so it throws
// CampaignFileError naming the key instead.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "nftape/campaign.hpp"
#include "nftape/medium.hpp"
#include "orchestrator/sweep.hpp"

namespace hsfi::orchestrator {

class CampaignFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The named fault axis for a medium — the axes run_sweep has always
/// offered, promoted into the library so campaign files (and any other
/// front end) resolve fault names against the same catalogue.
[[nodiscard]] std::vector<FaultPoint> standard_fault_axis(
    nftape::Medium medium);

/// 64-bit FNV-1a of `text` — the campaign file's identity. Checkpoint
/// sidecars record it so a resume against an edited spec is refused
/// instead of splicing records from two different expansions.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// The optional "strategy" block: which closed-loop strategy steers the
/// campaign and its knobs. Data only — the orchestrator does not depend on
/// src/adaptive; run_sweep interprets it.
struct StrategySpec {
  std::string name;  ///< "fixed" | "bisect" | "coverage"
  nftape::Knob knob = nftape::Knob::kUdpIntervalUs;
  /// The intensity axis endpoints (same defaults as the CLI: full-capacity
  /// 12 us pace out to a 396 us trickle).
  double axis_lo = 12.0;
  double axis_hi = 396.0;
  double tolerance_us = 24.0;   ///< bisect bracket width
  std::uint32_t max_rounds = 12;
  std::uint64_t target_count = 5;  ///< coverage observations per class
};

/// One target: a named medium-under-test with its fully resolved sweep
/// (file defaults overlaid with the target's own overrides, fault names
/// resolved against standard_fault_axis). `sweep.base_seed` is already
/// derive_seed(file seed, target ordinal), so targets draw disjoint seed
/// streams no matter how the file is sliced across processes.
struct CampaignTarget {
  std::string name;  ///< no '/' or ':' (prefixed onto run names)
  SweepSpec sweep;
};

struct CampaignFile {
  std::string name;
  std::uint64_t base_seed = 1;
  /// Runs per durable checkpoint batch in sharded execution.
  std::size_t checkpoint_batch = 8;
  std::vector<CampaignTarget> targets;
  std::optional<StrategySpec> strategy;
  std::uint64_t digest = 0;  ///< fnv1a64 of the source text
};

/// Parses a campaign-spec document. Schema (all *_ms / *_us fields accept
/// fractions; unknown keys anywhere are errors):
///
///   {
///     "name": "nightly",            // required
///     "seed": 1,
///     "checkpoint_batch": 8,
///     "strategy": {"name": "bisect", "knob": "udp-us",
///                  "axis_lo": 12, "axis_hi": 396, "tolerance_us": 24,
///                  "max_rounds": 12, "target_count": 5},
///     "defaults": { <target fields> },
///     "targets": [{"name": "myri", <target fields>}, ...]  // required
///   }
///
/// Target fields (each optional; target overrides defaults overrides the
/// built-in CLI sweep values): "medium" ("myrinet"|"fc"), "faults"
/// (names from standard_fault_axis; absent = the full axis), "directions"
/// (["to-switch"|"from-switch"|"both"]), "replicates", "duration_ms",
/// "warmup_ms", "drain_ms", "startup_settle_ms" (absent/0 = auto),
/// "map_period_ms", "udp_interval_us", "burst_size", "payload_size",
/// "jitter", "program_via_serial", "grid" — a list of named intensity
/// points {"name", "udp_interval_us", "burst_size", "payload_size"}
/// defaulting to the target's resolved workload — and "scenario": a
/// protocol-misbehavior program, either a registry name
/// ({"name": "flow-liar"}) or explicit steps ({"name": "...", "steps":
/// [{"kind": "rrdy-flood", "at_ms": 1.5, "node": 0, "count": 24}, ...]});
/// step kinds must match the target's medium.
///
/// Unknown keys report their full JSON path ("targets[2].strategy.knob"),
/// so a typo deep in an overlay is findable without a diff.
[[nodiscard]] CampaignFile parse_campaign_file(std::string_view text);

/// Reads and parses `path`. Throws CampaignFileError (file missing or any
/// parse/validation failure).
[[nodiscard]] CampaignFile load_campaign_file(const std::string& path);

/// The globally indexed run set: each target expanded in file order
/// (orchestrator::expand), indices shifted to be campaign-global, run
/// names prefixed "<target>:" (the colon keeps cell_key's
/// fault/direction grouping intact: "myri:gap-go/both"). A pure function
/// of the file, so every shard reconstructs the identical set.
[[nodiscard]] std::vector<RunSpec> expand_campaign(const CampaignFile& file);

}  // namespace hsfi::orchestrator
