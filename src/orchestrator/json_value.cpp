#include "orchestrator/json_value.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace hsfi::orchestrator {

namespace {

/// Nesting cap: campaign files are ~3 levels deep; 32 keeps a hostile
/// deeply-nested document from exhausting the parser's stack.
constexpr int kMaxDepth = 32;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool done() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }

  bool fail(const std::string& what) {
    char where[32];
    std::snprintf(where, sizeof(where), " at byte %zu", pos);
    error = what + where;
    return false;
  }

  void skip_ws() {
    while (!done()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c, const char* what) {
    skip_ws();
    if (done() || peek() != c) return fail(std::string("expected ") + what);
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  static int hex_digit(char c) noexcept {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "'\"'")) return false;
    out.clear();
    while (!done()) {
      const char ch = text[pos++];
      if (ch == '"') return true;
      if (static_cast<unsigned char>(ch) < 0x20) {
        return fail("raw control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (done()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (text.size() - pos < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const int d = hex_digit(text[pos++]);
            if (d < 0) return fail("bad \\u escape");
            code = code * 16 + static_cast<unsigned>(d);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (!done() && peek() == '-') ++pos;
    if (done() || peek() < '0' || peek() > '9') return fail("bad number");
    while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    if (!done() && peek() == '.') {
      ++pos;
      if (done() || peek() < '0' || peek() > '9') return fail("bad fraction");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || peek() < '0' || peek() > '9') return fail("bad exponent");
      while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.text = std::string(text.substr(start, pos - start));
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (done()) return fail("unexpected end of document");
    const char c = peek();
    if (c == '{') {
      ++pos;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (!done() && peek() == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        if (!parse_string(key)) return false;
        for (const auto& [existing, unused] : out.fields) {
          (void)unused;
          if (existing == key) return fail("duplicate key '" + key + "'");
        }
        if (!consume(':', "':'")) return false;
        JsonValue value;
        if (!parse_value(value, depth + 1)) return false;
        out.fields.emplace_back(std::move(key), std::move(value));
        skip_ws();
        if (!done() && peek() == ',') {
          ++pos;
          skip_ws();
          continue;
        }
        return consume('}', "',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (!done() && peek() == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue item;
        if (!parse_value(item, depth + 1)) return false;
        out.items.push_back(std::move(item));
        skip_ws();
        if (!done() && peek() == ',') {
          ++pos;
          continue;
        }
        return consume(']', "',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.text);
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return parse_number(out);
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::as_u64(std::uint64_t& out) const noexcept {
  if (kind != Kind::kNumber || text.empty() || text[0] == '-') return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;  // fraction/exponent: not exact
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return errno != ERANGE && end == text.c_str() + text.size();
}

bool JsonValue::as_double(double& out) const noexcept {
  if (kind != Kind::kNumber) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  Parser p{text};
  JsonValue root;
  if (!p.parse_value(root, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.done()) {
    p.fail("trailing garbage after document");
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  return root;
}

}  // namespace hsfi::orchestrator
