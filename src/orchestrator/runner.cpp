#include "orchestrator/runner.hpp"

#include <algorithm>
#include <ostream>
#include <thread>
#include <utility>

#include "analysis/accumulator.hpp"
#include "analysis/manifestation.hpp"
#include "nftape/fabric.hpp"
#include "nftape/testbed.hpp"
#include "orchestrator/jsonl.hpp"
#include "sim/time.hpp"

namespace hsfi::orchestrator {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Startup settle under the watchdog, chunked at the poll interval.
void settle_startup(nftape::Fabric& fabric, sim::Duration span,
                    const nftape::RunControl& control) {
  sim::Duration elapsed = 0;
  const sim::Duration chunk =
      control.poll_interval > 0 ? control.poll_interval : span;
  sim::Duration left = span;
  while (left > 0) {
    if (control.should_cancel && control.should_cancel(elapsed)) {
      throw nftape::RunCancelled("cancelled during testbed startup");
    }
    const sim::Duration step = left < chunk ? left : chunk;
    fabric.settle(step);
    elapsed += step;
    left -= step;
  }
}

/// The production executor: a private Fabric per run (thread isolation),
/// realized for the campaign's medium, startup settle under the watchdog,
/// then the campaign itself.
nftape::CampaignResult default_execute(const RunSpec& run,
                                       const nftape::RunControl& control) {
  const auto fabric = nftape::make_fabric(run.campaign.medium, run.testbed);
  fabric->start();
  settle_startup(*fabric, run.startup_settle, control);
  // Seed the campaign with the settle-phase elapsed so the watchdog sees
  // one accumulator across both phases: a run livelocked astride the phase
  // boundary must not get a second, fresh sim-time budget.
  nftape::CampaignRunner runner(*fabric);
  return runner.run(run.campaign, &control, run.startup_settle);
}

}  // namespace

/// One worker's snapshot cache: the settled fabric and its captured state.
/// The key normalizes the testbed seed to zero because the per-run seed is
/// re-derived inside CampaignRunner::run by reset_to_known_good — any two
/// runs differing only by seed share the same settled trajectory (the
/// settle phase draws nothing from the per-run streams), hence one cell.
struct Runner::SnapshotCache {
  bool valid = false;
  nftape::Medium medium = nftape::Medium::kMyrinet;
  sim::Duration startup_settle = 0;
  nftape::TestbedConfig config;  ///< seed-normalized cell key
  std::unique_ptr<nftape::Fabric> fabric;
  std::unique_ptr<nftape::FabricSnapshot> snap;
};

nftape::CampaignResult Runner::snapshot_execute(
    const RunSpec& run, const nftape::RunControl& control,
    SnapshotCache& cache) {
  nftape::TestbedConfig norm = run.testbed;
  norm.seed = 0;
  const bool hit = cache.valid && cache.medium == run.campaign.medium &&
                   cache.startup_settle == run.startup_settle &&
                   cache.config == norm;
  if (hit) {
    cache.fabric->restore_snapshot(*cache.snap);
  } else {
    cache.valid = false;
    cache.snap.reset();
    cache.fabric = nftape::make_fabric(run.campaign.medium, run.testbed);
    cache.fabric->start();
    settle_startup(*cache.fabric, run.startup_settle, control);
    cache.snap = cache.fabric->capture_snapshot();
    if (cache.snap == nullptr) {
      // Fabric without snapshot support: run cold on the fresh fabric and
      // leave the cache invalid so every run of this cell cold-starts.
      nftape::CampaignRunner runner(*cache.fabric);
      auto result = runner.run(run.campaign, &control, run.startup_settle);
      cache.fabric.reset();
      return result;
    }
    cache.medium = run.campaign.medium;
    cache.startup_settle = run.startup_settle;
    cache.config = norm;
    cache.valid = true;
  }
  // Either way the fabric now sits at the settle boundary. Credit the
  // settle span to the watchdog accumulator exactly like a cold start, so
  // one budget covers the whole (virtual) run.
  nftape::CampaignRunner runner(*cache.fabric);
  return runner.run(run.campaign, &control, run.startup_settle);
}

std::string_view to_string(RunOutcome o) noexcept {
  switch (o) {
    case RunOutcome::kOk: return "ok";
    case RunOutcome::kTimedOut: return "timed_out";
    case RunOutcome::kError: return "error";
    case RunOutcome::kSkipped: return "skipped";
  }
  return "?";
}

std::string to_jsonl(const RunRecord& r, bool include_timing) {
  JsonObject o;
  o.add_u64("run", r.index);
  o.add("name", r.name);
  o.add_u64("seed", r.seed);
  // Medium only when it isn't the default, so Myrinet sweeps keep the exact
  // pre-Fabric record format (same rule as round/strategy below).
  if (r.medium != nftape::Medium::kMyrinet) {
    o.add("medium", std::string(nftape::to_string(r.medium)));
  }
  // Closed-loop provenance only when a strategy tagged the run, so static
  // sweeps keep the exact pre-adaptive record format.
  if (!r.strategy.empty()) {
    o.add_u64("round", r.round);
    o.add("strategy", r.strategy);
  }
  // Scenario provenance only when the run carried one, same rule again.
  if (!r.scenario.empty()) o.add("scenario", r.scenario);
  o.add("outcome", to_string(r.outcome));
  o.add_i64("attempts", r.attempts);
  o.add_i64("timeouts", r.timeouts);
  if (!r.error.empty()) o.add("error", r.error);
  if (r.outcome == RunOutcome::kOk) {
    const auto& c = r.result;
    o.add_u64("sent", c.messages_sent);
    o.add_u64("received", c.messages_received);
    o.add_fixed("loss_pct", 100.0 * c.loss_rate(), 4);
    o.add_fixed("window_ms", sim::to_milliseconds(c.window), 3);
    o.add_u64("injections", c.injections);
    o.add_u64("crc_errors", c.link_crc_errors);
    o.add_u64("marker_errors", c.marker_errors);
    o.add_u64("ring_overflows", c.ring_overflows);
    o.add_u64("udp_drops", c.udp_checksum_drops);
    o.add_u64("misaddressed", c.misaddressed_drops);
    o.add_u64("unroutable", c.unroutable_drops);
    o.add_u64("unknown_type", c.unknown_type_drops);
    o.add_u64("tx_drops", c.nic_tx_drops);
    o.add_u64("slack_overflow", c.slack_overflow);
    o.add_u64("long_timeouts", c.long_timeouts);
    o.add_u64("duplicates", c.duplicates());
    o.add_u64("events", c.events_executed);
    for (const auto m : analysis::all_manifestations()) {
      o.add_u64(analysis::jsonl_key(m), c.manifestations[m]);
    }
    o.add_u64("secondary_effects", c.secondary_effects);
    if (r.medium == nftape::Medium::kFc) {
      o.add_u64("fc_credit_stalls", c.fc_credit_stalls);
      o.add_u64("fc_seq_aborts", c.fc_sequences_aborted);
    }
    if (!r.scenario.empty()) o.add_u64("steps", c.scenario_steps_fired);
  }
  if (include_timing) o.add_fixed("wall_ms", r.wall_ms, 3);
  return o.str();
}

nftape::Report summarize(const std::string& title,
                         const std::vector<RunRecord>& records) {
  nftape::Report report(title);
  report.set_header({"run", "name", "outcome", "attempts", "sent", "received",
                     "loss", "dups", "injections", "manifestations"});
  std::size_t ok = 0, timed_out = 0, errors = 0, skipped = 0;
  std::uint64_t duplicates = 0;
  double wall_ms = 0.0;
  for (const auto& r : records) {
    const auto& c = r.result;
    report.add_row(
        {nftape::cell("%zu", r.index), r.name,
         std::string(to_string(r.outcome)), nftape::cell("%d", r.attempts),
         nftape::cell("%llu", (unsigned long long)c.messages_sent),
         nftape::cell("%llu", (unsigned long long)c.messages_received),
         nftape::cell("%.2f%%", 100.0 * c.loss_rate()),
         nftape::cell("%llu", (unsigned long long)c.duplicates()),
         nftape::cell("%llu", (unsigned long long)c.injections),
         analysis::describe(c.manifestations)});
    duplicates += c.duplicates();
    wall_ms += r.wall_ms;
    switch (r.outcome) {
      case RunOutcome::kOk: ++ok; break;
      case RunOutcome::kTimedOut: ++timed_out; break;
      case RunOutcome::kError: ++errors; break;
      case RunOutcome::kSkipped: ++skipped; break;
    }
  }
  report.add_note(nftape::cell(
      "%zu ok, %zu timed out, %zu errored; %.1f s of worker wall time", ok,
      timed_out, errors, wall_ms / 1e3));
  if (skipped != 0) {
    report.add_note(nftape::cell(
        "%zu skipped (early-cancelled by the streaming feed)", skipped));
  }
  if (duplicates != 0) {
    report.add_note(nftape::cell(
        "%llu duplicate deliveries (received > sent; not counted as loss)",
        (unsigned long long)duplicates));
  }
  return report;
}

std::string cell_key(std::string_view run_name) {
  const auto first = run_name.find('/');
  if (first != std::string_view::npos) {
    const auto second = run_name.find('/', first + 1);
    if (second != std::string_view::npos) {
      return std::string(run_name.substr(0, second));
    }
  }
  return std::string(run_name);
}

nftape::Report cell_summary(const std::string& title,
                            const std::vector<RunRecord>& records) {
  analysis::CellAccumulator cells;
  for (const auto& r : records) {
    cells.add_run(cell_key(r.name), r.outcome == RunOutcome::kOk,
                  r.result.manifestations,
                  r.result.injections, r.result.duplicates(),
                  &r.result.manifestation_latency);
  }

  nftape::Report report(title);
  report.set_header({"cell", "runs", "injections", "manifested (Wilson 95%)",
                     "dups", "classes"});
  for (const auto& [name, stats] : cells.cells()) {
    report.add_row({name, nftape::cell("%llu", (unsigned long long)stats.runs),
                    nftape::cell("%llu", (unsigned long long)stats.injections),
                    nftape::rate_cell(stats.manifested(), stats.injections),
                    nftape::cell("%llu", (unsigned long long)stats.duplicates),
                    analysis::describe(stats.manifestations)});
  }
  return report;
}

Runner::Runner(RunnerConfig config) : config_(std::move(config)) {}

Runner::~Runner() = default;

namespace {

/// Identity fields every record carries, executed or not.
void stamp_identity(const RunSpec& run, RunRecord& rec) {
  rec.index = run.index;
  rec.name = run.campaign.name;
  rec.seed = run.seed;
  rec.medium = run.campaign.medium;
  rec.round = run.round;
  rec.strategy = run.strategy;
  if (run.campaign.scenario) rec.scenario = run.campaign.scenario->name;
}

}  // namespace

void Runner::execute_one(const RunSpec& run, RunRecord& rec,
                         std::size_t worker) {
  stamp_identity(run, rec);

  // Auto simulated-time cap: generous for a healthy run of this spec's own
  // span, fatal for a livelocked simulation. Uses the spec's actual guard
  // settles so a campaign with long guards gets a budget that covers them.
  const sim::Duration span = run.startup_settle + run.campaign.program_guard +
                             run.campaign.disarm_guard +
                             run.campaign.warmup + run.campaign.duration +
                             run.campaign.drain + run.testbed.map_period +
                             run.testbed.map_reply_window;
  const sim::Duration sim_cap =
      config_.sim_limit > 0 ? config_.sim_limit : 8 * span;
  const int attempts_allowed =
      1 + (config_.max_retries > 0 ? config_.max_retries : 0);

  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    nftape::RunControl control;
    control.poll_interval = config_.poll_interval;
    control.should_cancel = [this, start, sim_cap](sim::Duration elapsed) {
      if (cancelled_.load(std::memory_order_relaxed)) return true;
      if (config_.wall_limit.count() > 0 &&
          std::chrono::steady_clock::now() - start >= config_.wall_limit) {
        return true;
      }
      return elapsed >= sim_cap;
    };
    ++rec.attempts;
    try {
      auto result =
          config_.executor
              ? config_.executor(run, control)
              : (config_.snapshots
                     ? snapshot_execute(run, control, *caches_[worker])
                     : default_execute(run, control));
      rec.wall_ms += ms_since(start);
      rec.result = std::move(result);
      rec.outcome = RunOutcome::kOk;
      rec.error.clear();
      return;
    } catch (const nftape::RunCancelled& e) {
      rec.wall_ms += ms_since(start);
      ++rec.timeouts;
      rec.outcome = RunOutcome::kTimedOut;
      rec.error = e.what();
      // An external cancel() is not a hung run; don't burn a retry on it.
      if (cancelled_.load(std::memory_order_relaxed)) return;
    } catch (const std::exception& e) {
      rec.wall_ms += ms_since(start);
      rec.outcome = RunOutcome::kError;
      rec.error = e.what();
    }
  }
}

std::vector<RunRecord> Runner::run_all(const std::vector<RunSpec>& runs) {
  progress_ = Progress{};
  return run_batch(runs);
}

std::vector<RunRecord> Runner::run_batch(const std::vector<RunSpec>& runs) {
  std::vector<RunRecord> records(runs.size());
  if (runs.empty()) return records;

  std::size_t workers = config_.workers != 0
                            ? config_.workers
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, runs.size());

  // Per-worker snapshot caches, created lazily and kept across batches so
  // closed-loop rounds reuse settled fabrics (only touched by the owning
  // worker's thread while the pool runs).
  if (config_.snapshots) {
    while (caches_.size() < workers) {
      caches_.push_back(std::make_unique<SnapshotCache>());
    }
  }

  std::atomic<std::size_t> next{0};
  std::mutex mu;  // guards progress + both callbacks
  Progress& progress = progress_;
  progress.total += runs.size();

  const auto work = [&](std::size_t worker) {
    for (;;) {
      const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= runs.size()) return;
      // Early-cancel: a closed-loop feed may have resolved this run's cell
      // while it sat in the queue. Polled outside the mutex (should_skip is
      // thread-safe by contract); the record still flows through the sinks
      // so the stream stays one-record-per-run.
      const bool skip =
          config_.should_skip && config_.should_skip(runs[idx]);
      if (skip) {
        RunRecord& rec = records[idx];
        stamp_identity(runs[idx], rec);
        rec.outcome = RunOutcome::kSkipped;
        rec.error = "skipped: cell resolved by streaming feed";
      } else {
        {
          const std::lock_guard<std::mutex> lock(mu);
          ++progress.in_flight;
          if (config_.on_progress) config_.on_progress(progress);
        }
        execute_one(runs[idx], records[idx], worker);
      }
      {
        const std::lock_guard<std::mutex> lock(mu);
        const RunRecord& rec = records[idx];
        switch (rec.outcome) {
          case RunOutcome::kOk: ++progress.completed; break;
          case RunOutcome::kSkipped: ++progress.skipped; break;
          default: ++progress.failed; break;
        }
        if (!skip) --progress.in_flight;
        if (rec.attempts > 1) {
          progress.retries += static_cast<std::size_t>(rec.attempts - 1);
        }
        if (config_.on_record) config_.on_record(rec);
        for (RecordSink* sink : config_.sinks) sink->on_record(rec);
        if (config_.on_progress) config_.on_progress(progress);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(work, i);
  for (auto& t : pool) t.join();
  return records;
}

void JsonlSink::write(const RunRecord& record) {
  const std::string line = to_jsonl(record, timing_);
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
}

}  // namespace hsfi::orchestrator
