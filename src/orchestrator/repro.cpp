#include "orchestrator/repro.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/manifestation.hpp"
#include "orchestrator/campaign_file.hpp"
#include "orchestrator/json_value.hpp"
#include "orchestrator/jsonl.hpp"

namespace hsfi::orchestrator {

namespace {

constexpr std::string_view kMagic = "hsfi-repro-v1";

[[noreturn]] void bail(const std::string& what) {
  throw CampaignFileError("repro trace: " + what);
}

std::string field_str(const JsonValue& v, const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kString) bail(ctx + " must be a string");
  return v.text;
}

std::uint64_t field_u64(const JsonValue& v, const std::string& ctx) {
  std::uint64_t out = 0;
  if (!v.as_u64(out)) bail(ctx + " must be a non-negative integer");
  return out;
}

double field_num(const JsonValue& v, const std::string& ctx) {
  double out = 0;
  if (!v.as_double(out)) bail(ctx + " must be a number");
  return out;
}

sim::Duration field_ms(const JsonValue& v, const std::string& ctx) {
  const double ms = field_num(v, ctx);
  if (ms < 0) bail(ctx + " must be non-negative");
  return sim::nanoseconds(std::llround(ms * 1e6));
}

/// Fixed-point formatting, like JsonObject::add_fixed: deterministic bytes
/// so emit -> parse -> emit is the identity on the file.
std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

scenario::ScenarioSpec parse_scenario_block(const JsonValue& v,
                                            const std::string& ctx) {
  if (v.kind != JsonValue::Kind::kObject) bail(ctx + " must be an object");
  scenario::ScenarioSpec spec;
  const JsonValue* steps = nullptr;
  std::string steps_ctx;
  for (const auto& [key, value] : v.fields) {
    const std::string fctx = ctx + "." + key;
    if (key == "name") {
      spec.name = field_str(value, fctx);
    } else if (key == "steps") {
      if (value.kind != JsonValue::Kind::kArray) {
        bail(fctx + " must be an array");
      }
      steps = &value;
      steps_ctx = fctx;
    } else {
      bail("unknown key '" + fctx + "'");
    }
  }
  if (spec.name.empty()) bail(ctx + " needs a non-empty \"name\"");
  if (steps == nullptr || steps->items.empty()) {
    bail(ctx + " needs a non-empty \"steps\" array");
  }
  for (std::size_t i = 0; i < steps->items.size(); ++i) {
    const auto& sv = steps->items[i];
    const std::string sctx = steps_ctx + "[" + std::to_string(i) + "]";
    if (sv.kind != JsonValue::Kind::kObject) bail(sctx + " must be an object");
    scenario::Step step;
    bool have_kind = false;
    for (const auto& [key, value] : sv.fields) {
      const std::string fctx = sctx + "." + key;
      if (key == "kind") {
        const auto parsed = scenario::parse_step_kind(field_str(value, fctx));
        if (!parsed) bail(fctx + ": unknown step kind");
        step.kind = *parsed;
        have_kind = true;
      } else if (key == "at_ms") {
        step.at = field_ms(value, fctx);
      } else if (key == "node") {
        step.node = static_cast<std::uint32_t>(field_u64(value, fctx));
      } else if (key == "count") {
        step.count = field_u64(value, fctx);
      } else {
        bail("unknown key '" + fctx + "'");
      }
    }
    if (!have_kind) bail(sctx + " needs a \"kind\"");
    if (step.at <= 0) bail(sctx + " needs a positive \"at_ms\"");
    spec.steps.push_back(step);
  }
  return spec;
}

}  // namespace

std::string dominant_class(const nftape::CampaignResult& result) {
  std::uint64_t best = 0;
  analysis::Manifestation which = analysis::Manifestation::kMasked;
  for (const auto m : analysis::all_manifestations()) {
    if (m == analysis::Manifestation::kMasked) continue;
    const auto count = result.manifestations[m];
    if (count > best) {
      best = count;
      which = m;
    }
  }
  if (best == 0) return "";
  return std::string(analysis::to_string(which));
}

std::string to_json(const ReproTrace& trace) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"magic\": \"" << kMagic << "\",\n";
  out << "  \"name\": \"" << json_escape(trace.name) << "\",\n";
  out << "  \"medium\": \"" << nftape::to_string(trace.medium) << "\",\n";
  out << "  \"seed\": " << trace.seed << ",\n";
  out << "  \"fault\": \"" << json_escape(trace.fault) << "\",\n";
  out << "  \"direction\": \"" << to_string(trace.direction) << "\",\n";
  out << "  \"warmup_ms\": " << fixed(sim::to_milliseconds(trace.warmup), 6)
      << ",\n";
  out << "  \"duration_ms\": "
      << fixed(sim::to_milliseconds(trace.duration), 6) << ",\n";
  out << "  \"drain_ms\": " << fixed(sim::to_milliseconds(trace.drain), 6)
      << ",\n";
  out << "  \"udp_interval_us\": "
      << fixed(sim::to_microseconds(trace.udp_interval), 3) << ",\n";
  out << "  \"payload_size\": " << trace.payload_size << ",\n";
  out << "  \"burst_size\": " << trace.burst_size << ",\n";
  out << "  \"jitter\": " << fixed(trace.jitter, 6) << ",\n";
  out << "  \"scenario\": {\"name\": \"" << json_escape(trace.scenario.name)
      << "\", \"steps\": [";
  for (std::size_t i = 0; i < trace.scenario.steps.size(); ++i) {
    const auto& s = trace.scenario.steps[i];
    if (i != 0) out << ", ";
    out << "\n    {\"kind\": \"" << scenario::to_string(s.kind)
        << "\", \"at_ms\": " << fixed(sim::to_milliseconds(s.at), 6)
        << ", \"node\": " << s.node << ", \"count\": " << s.count << "}";
  }
  out << "\n  ]},\n";
  out << "  \"expect\": \"" << json_escape(trace.expect) << "\",\n";
  out << "  \"jsonl\": \"" << json_escape(trace.jsonl) << "\"\n";
  out << "}\n";
  return out.str();
}

ReproTrace parse_repro_trace(std::string_view text) {
  std::string error;
  const auto doc = parse_json(text, &error);
  if (!doc) bail(error);
  if (doc->kind != JsonValue::Kind::kObject) bail("document must be an object");

  ReproTrace trace;
  bool have_magic = false, have_scenario = false;
  for (const auto& [key, value] : doc->fields) {
    if (key == "magic") {
      const auto magic = field_str(value, "magic");
      if (magic != kMagic) {
        bail("unsupported magic '" + magic + "' (want " + std::string(kMagic) +
             ")");
      }
      have_magic = true;
    } else if (key == "name") {
      trace.name = field_str(value, "name");
    } else if (key == "medium") {
      const auto m = nftape::parse_medium(field_str(value, "medium"));
      if (!m) bail("medium: unknown medium");
      trace.medium = *m;
    } else if (key == "seed") {
      trace.seed = field_u64(value, "seed");
    } else if (key == "fault") {
      trace.fault = field_str(value, "fault");
    } else if (key == "direction") {
      const auto d = field_str(value, "direction");
      if (d == "to-switch") {
        trace.direction = FaultDirection::kToSwitch;
      } else if (d == "from-switch") {
        trace.direction = FaultDirection::kFromSwitch;
      } else if (d == "both") {
        trace.direction = FaultDirection::kBoth;
      } else {
        bail("direction: unknown direction '" + d + "'");
      }
    } else if (key == "warmup_ms") {
      trace.warmup = field_ms(value, "warmup_ms");
    } else if (key == "duration_ms") {
      trace.duration = field_ms(value, "duration_ms");
    } else if (key == "drain_ms") {
      trace.drain = field_ms(value, "drain_ms");
    } else if (key == "udp_interval_us") {
      const double us = field_num(value, "udp_interval_us");
      if (us <= 0) bail("udp_interval_us must be positive");
      trace.udp_interval = sim::nanoseconds(std::llround(us * 1e3));
    } else if (key == "payload_size") {
      trace.payload_size =
          static_cast<std::size_t>(field_u64(value, "payload_size"));
    } else if (key == "burst_size") {
      trace.burst_size =
          static_cast<std::size_t>(field_u64(value, "burst_size"));
    } else if (key == "jitter") {
      trace.jitter = field_num(value, "jitter");
    } else if (key == "scenario") {
      trace.scenario = parse_scenario_block(value, "scenario");
      have_scenario = true;
    } else if (key == "expect") {
      trace.expect = field_str(value, "expect");
    } else if (key == "jsonl") {
      trace.jsonl = field_str(value, "jsonl");
    } else {
      bail("unknown key '" + key + "'");
    }
  }
  if (!have_magic) bail("\"magic\" is required");
  if (trace.name.empty()) bail("\"name\" is required");
  if (!have_scenario) bail("\"scenario\" is required");
  if (trace.jsonl.empty()) bail("\"jsonl\" is required");
  return trace;
}

ReproTrace load_repro_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bail("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_repro_trace(text.str());
}

}  // namespace hsfi::orchestrator
