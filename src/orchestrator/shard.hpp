// Sharded, checkpointed campaign execution: split one expanded run set
// across independent processes, write each shard's records durably batch
// by batch, survive a mid-flight SIGKILL, and merge the shard files back
// into the byte-exact single-process JSONL.
//
// Partitioning is seed-keyed, not index-keyed: shard_of() hashes the
// run's derived seed through splitmix64, so ownership is a pure function
// of the spec — every process that expands the same campaign file agrees
// on who owns what without any coordination, and inserting a target into
// the spec reshuffles nothing that kept its seed.
//
// Durability contract (the JSONL file is the ground truth, the sidecar is
// the cursor): after every batch the data file is fsync'd first, then the
// sidecar is replaced atomically (tmp + fsync + rename). A crash between
// the two leaves a sidecar that under-counts — resume re-truncates the
// data file to the sidecar's byte offset, discarding the orphaned (or
// torn) tail, and re-executes from the last durable run. Records are
// deterministic, so the re-executed bytes equal the discarded ones.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"
#include "sim/rng.hpp"

namespace hsfi::orchestrator {

class ShardError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which of `of` shards owns a run with this seed. of <= 1 degenerates to
/// the single-process case (everything is shard 0).
[[nodiscard]] constexpr std::uint32_t shard_of(std::uint64_t seed,
                                               std::uint32_t of) noexcept {
  return of <= 1 ? 0
                 : static_cast<std::uint32_t>(sim::splitmix64(seed) % of);
}

/// The subsequence of `runs` owned by shard `k` of `n`, in index order
/// (global indices are preserved — records still carry their campaign-wide
/// "run" field).
[[nodiscard]] std::vector<RunSpec> shard_runs(const std::vector<RunSpec>& runs,
                                              std::uint32_t k,
                                              std::uint32_t n);

/// Shard file naming: "<out>.shard<k>of<n>"; n <= 1 returns `out`
/// unchanged, so single-process checkpointed runs write the final file
/// directly.
[[nodiscard]] std::string shard_path(const std::string& out, std::uint32_t k,
                                     std::uint32_t n);

/// The sidecar: where a shard's durable output ends. `spec_digest` binds
/// it to one campaign file (fnv1a64 of the spec text) so a resume against
/// an edited spec is refused.
struct Checkpoint {
  std::uint64_t spec_digest = 0;
  std::uint32_t shard = 0;
  std::uint32_t of = 1;
  std::uint64_t batches = 0;  ///< durable batches completed
  std::uint64_t runs = 0;     ///< durable records (prefix of the shard's set)
  std::uint64_t bytes = 0;    ///< data-file size at the last durable batch
  bool done = false;
};

[[nodiscard]] std::string checkpoint_path(const std::string& shard_file);

/// Reads a sidecar. nullopt = file absent (fresh start); a present but
/// unreadable/mismatched document throws ShardError — a corrupt cursor
/// must never silently restart a half-finished campaign from zero.
[[nodiscard]] std::optional<Checkpoint> read_checkpoint(
    const std::string& path);

/// Atomically replaces `path` with one durable JSON line: write to
/// "<path>.tmp", fsync, rename over, fsync the directory.
void write_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// The same atomic tmp+fsync+rename replacement for arbitrary text —
/// non-shard sidecars (the adaptive round checkpoint) share the durability
/// path instead of reinventing it.
void write_text_durable(const std::string& path, std::string_view text);

/// Append-only writer over a POSIX fd with explicit durability. Opening
/// truncates to `keep_bytes` first (crash recovery: everything past the
/// last durable checkpoint is discarded, including torn lines).
class DurableAppender {
 public:
  DurableAppender(const std::string& path, std::uint64_t keep_bytes);
  ~DurableAppender();
  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  void append(std::string_view text);  ///< full write; throws ShardError
  void sync();                         ///< fsync
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::string path_;
};

struct ShardOptions {
  std::size_t batch = 8;  ///< runs per durable batch (min 1)
  bool resume = false;
  bool include_timing = false;
  /// Fired after each batch becomes durable (data fsync'd, sidecar
  /// renamed) with the checkpoint just written. Test seam: crash-recovery
  /// tests hard-kill the process from here.
  std::function<void(const Checkpoint&)> after_batch;
};

struct ShardResult {
  /// Records executed by THIS invocation, in index order. Runs restored
  /// from the checkpoint are not re-materialized (their bytes are already
  /// in the file).
  std::vector<RunRecord> executed;
  std::uint64_t restored = 0;  ///< runs skipped via the checkpoint
};

/// Executes `runs` (already filtered to this shard) through `runner` in
/// batches, appending JSONL to `shard_file` with a durable checkpoint per
/// batch. `identity` carries spec_digest/shard/of; with opts.resume the
/// existing sidecar is validated against it and execution continues after
/// the last durable batch. Throws ShardError on I/O failure or a
/// checkpoint that belongs to a different spec or shard layout.
ShardResult run_sharded(Runner& runner, const std::vector<RunSpec>& runs,
                        const std::string& shard_file,
                        const Checkpoint& identity,
                        const ShardOptions& opts = {});

/// Merges the `of` shard files of `out` (shard_path naming) into `out`
/// itself, in global index order. Every expanded run must be present in
/// exactly its owning shard's file with a matching `"run":<index>` prefix;
/// gaps (an unfinished shard), extras, or misordered records throw
/// ShardError. Returns the number of records merged. The result is
/// byte-identical to a single-process run of the same spec.
std::size_t merge_shards(const std::vector<RunSpec>& runs,
                         const std::string& out, std::uint32_t of);

}  // namespace hsfi::orchestrator
