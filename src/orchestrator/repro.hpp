// Replayable reproducer traces: the minimizer's output artifact.
//
// When `run_sweep --emit-repro` finishes minimizing a misbehavior scenario,
// it writes one JSON document holding everything needed to re-execute the
// minimal run byte-deterministically on any machine: medium, seed, window
// and workload shape, the (minimized) step sequence, the manifestation
// class it must reproduce, and the exact JSONL record the emitting run
// produced. `run_sweep --replay trace.json` rebuilds the identical RunSpec,
// executes it, and compares its JSONL line against the stored one — a
// byte-level equality check, not a statistical one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "nftape/campaign.hpp"
#include "nftape/medium.hpp"
#include "orchestrator/sweep.hpp"
#include "scenario/scenario.hpp"

namespace hsfi::orchestrator {

/// The signature the minimizer preserves: the highest-count non-masked
/// manifestation class of a run, named in severity order (ties keep the
/// less severe class, matching all_manifestations() order). Empty when
/// nothing manifested — the "did not reproduce" signal.
[[nodiscard]] std::string dominant_class(const nftape::CampaignResult& result);

struct ReproTrace {
  std::string name;  ///< run name, also the replayed campaign's name
  nftape::Medium medium = nftape::Medium::kMyrinet;
  std::uint64_t seed = 0;
  /// Fault from standard_fault_axis programmed alongside the scenario;
  /// empty = fault-free baseline.
  std::string fault;
  FaultDirection direction = FaultDirection::kBoth;
  sim::Duration warmup = sim::milliseconds(10);
  sim::Duration duration = sim::milliseconds(60);
  sim::Duration drain = sim::milliseconds(10);
  sim::Duration udp_interval = sim::microseconds(12);
  std::size_t payload_size = 256;
  std::size_t burst_size = 4;
  double jitter = 0.5;
  scenario::ScenarioSpec scenario;
  /// dominant_class of the emitting run — what a replay must reproduce.
  std::string expect;
  /// The emitting run's full JSONL record; a replay must match it byte for
  /// byte (the sorted-JSONL determinism contract, applied to one run).
  std::string jsonl;
};

/// Serializes the trace as one JSON document (trailing newline included).
[[nodiscard]] std::string to_json(const ReproTrace& trace);

/// Strict parse (same house rules as campaign files: unknown keys are
/// errors with their full JSON path). Throws CampaignFileError.
[[nodiscard]] ReproTrace parse_repro_trace(std::string_view text);

/// Reads and parses `path`. Throws CampaignFileError.
[[nodiscard]] ReproTrace load_repro_trace(const std::string& path);

}  // namespace hsfi::orchestrator
