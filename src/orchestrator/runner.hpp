// Parallel campaign execution: a fixed-size worker pool over expanded
// sweep runs, with per-run watchdogs, one retry, and JSONL result records.
//
// Thread model (see DESIGN.md "Orchestrator"): the simulation core is
// single-threaded by design; parallelism happens strictly at run
// granularity. Each worker constructs a private Testbed + Simulator per
// run, so no simulation state is ever shared between threads — the only
// cross-thread traffic is the run-index counter, the per-record slots
// (disjoint per run), and the progress/record callbacks (serialized by a
// mutex). Seeds are derived from (base_seed, run index) before execution
// starts, so results are bit-identical regardless of worker count or
// completion order.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "nftape/campaign.hpp"
#include "nftape/report.hpp"
#include "orchestrator/sweep.hpp"

namespace hsfi::orchestrator {

enum class RunOutcome : std::uint8_t {
  kOk,        ///< campaign completed and produced a result
  kTimedOut,  ///< watchdog cancelled every attempt
  kError,     ///< executor threw (non-watchdog)
  kSkipped,   ///< RunnerConfig::should_skip declined the run (never started)
};

[[nodiscard]] std::string_view to_string(RunOutcome o) noexcept;

/// One line of the campaign log: everything about one run.
struct RunRecord {
  std::size_t index = 0;
  std::string name;
  std::uint64_t seed = 0;
  /// Which fabric realization ran this campaign (recorded even for failed
  /// runs, where `result` is not valid).
  nftape::Medium medium = nftape::Medium::kMyrinet;
  std::uint32_t round = 0;  ///< adaptive round (meaningful when strategy set)
  std::string strategy;     ///< adaptive strategy tag; empty for static sweeps
  std::string scenario;     ///< misbehavior-scenario name; empty when none
  RunOutcome outcome = RunOutcome::kError;
  int attempts = 0;  ///< executor invocations (1 normally, 2 after a retry)
  int timeouts = 0;  ///< attempts the watchdog cancelled
  std::string error;  ///< what() of the last non-watchdog failure
  nftape::CampaignResult result;  ///< valid when outcome == kOk
  double wall_ms = 0.0;  ///< wall time across attempts (nondeterministic)
};

/// Serializes a record as one JSONL line (no trailing newline). Field
/// order is fixed. `include_timing` appends wall_ms — deliberately opt-in,
/// because wall time is the one nondeterministic field and leaving it out
/// keeps sorted JSONL byte-identical across worker counts.
[[nodiscard]] std::string to_jsonl(const RunRecord& record,
                                   bool include_timing = false);

/// Aggregate table over a finished sweep: one row per run plus totals.
[[nodiscard]] nftape::Report summarize(const std::string& title,
                                       const std::vector<RunRecord>& records);

/// The "<fault>/<direction>" cell key of a run name: its first two
/// '/'-separated segments. Names with fewer segments key as the whole name.
/// Shared by cell_summary and the streaming monitor so both aggregate over
/// the same cells.
[[nodiscard]] std::string cell_key(std::string_view run_name);

/// Per-cell aggregate: records grouped by the cell_key of their run name,
/// with the manifestation rate (manifested firings / injections) and its
/// Wilson 95% confidence interval per cell — the same interval the adaptive
/// coverage strategy stops on, so the table shows exactly the numbers the
/// controller acted on.
[[nodiscard]] nftape::Report cell_summary(const std::string& title,
                                          const std::vector<RunRecord>& records);

struct Progress {
  std::size_t total = 0;
  std::size_t completed = 0;  ///< finished ok
  std::size_t failed = 0;     ///< finished timed_out or error
  std::size_t skipped = 0;    ///< declined by should_skip (early-cancel)
  std::size_t in_flight = 0;
  std::size_t retries = 0;    ///< attempts beyond the first, so far
};

/// Streaming consumer of finished run records — the online analysis plane's
/// attachment point (monitor::MonitorService implements it). The runner
/// fires it per completed run, in completion order, serialized by the same
/// mutex as the on_record / on_progress callbacks, so an implementation
/// needs no locking of its own against the pool (it does need it against
/// readers on other threads).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_record(const RunRecord& record) = 0;
};

struct RunnerConfig {
  /// Worker threads. 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// Per-attempt wall-clock cap. 0 = none.
  std::chrono::milliseconds wall_limit{0};
  /// Per-attempt simulated-time cap. 0 = auto: 8x the run's own simulated
  /// span (startup + programming + window + recovery) — generous for a
  /// healthy run, fatal for a livelocked one.
  sim::Duration sim_limit = 0;
  /// Retries after a watchdog timeout or executor error (same seed).
  int max_retries = 1;
  /// Watchdog poll granularity in simulated time (RunControl chunking).
  sim::Duration poll_interval = sim::milliseconds(10);
  /// Snapshot/fork execution: each worker settles the fabric once per
  /// (topology, workload, medium) cell, captures the settled state, and
  /// forks every subsequent run of that cell from the snapshot instead of
  /// re-simulating boot + mapping. Per-run state (seeds, RNG streams,
  /// monitors, workload) is re-derived by reset_to_known_good, so JSONL is
  /// byte-identical to cold starts (tests/snapshot_test.cpp pins this).
  /// Ignored when a custom executor is set.
  bool snapshots = false;
  /// Called (serialized) after every run completes.
  std::function<void(const Progress&)> on_progress;
  /// Called (serialized) with each finished record, in completion order —
  /// the streaming JSONL hook.
  std::function<void(const RunRecord&)> on_record;
  /// Streaming record consumers, fired (serialized) alongside on_record for
  /// every finished record, in registration order. Raw pointers: sinks must
  /// outlive every run_all / run_batch call.
  std::vector<RecordSink*> sinks;
  /// Early-cancel hook for closed-loop feeds: polled when a worker dequeues
  /// a run; true skips execution entirely and records RunOutcome::kSkipped
  /// (0 attempts). Called concurrently from worker threads — must be
  /// thread-safe. Which runs observe a late-arriving skip depends on
  /// completion order, so any campaign that wants byte-stable JSONL must
  /// leave this unset (the adaptive controller's deterministic mode does).
  std::function<bool(const RunSpec&)> should_skip;
  /// Executes one attempt; used by tests to substitute hostile executors.
  /// Default: build an isolated Testbed, settle startup, run the campaign
  /// under `control`. Must throw nftape::RunCancelled when cancelled.
  std::function<nftape::CampaignResult(const RunSpec&,
                                       const nftape::RunControl&)>
      executor;
};

class Runner {
 public:
  explicit Runner(RunnerConfig config = {});
  ~Runner();

  /// Executes every run and returns records indexed by RunSpec::index.
  /// Blocks until all runs finish (or are cancelled). Resets the
  /// cross-batch Progress accumulation first (one-shot sweeps).
  std::vector<RunRecord> run_all(const std::vector<RunSpec>& runs);

  /// Batch submission for closed-loop controllers: executes one round of
  /// runs and returns its records (positional, like run_all), but Progress
  /// accumulates across batches so on_progress reports campaign-wide
  /// totals while the controller alternates submit / observe. The batch
  /// boundary is a synchronization point: run_batch returns only when
  /// every run of the batch has finished.
  std::vector<RunRecord> run_batch(const std::vector<RunSpec>& runs);

  /// Cooperative kill switch: in-flight runs are cancelled at their next
  /// watchdog poll (marked timed_out, no retry); queued runs still start
  /// but cancel immediately.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

 private:
  /// Per-worker snapshot cache (defined in runner.cpp): the settled fabric
  /// and its captured state, keyed by (medium, startup settle, seed-
  /// normalized TestbedConfig). One per worker index, touched only by that
  /// worker's thread; persists across run_batch calls so the adaptive
  /// controller's rounds reuse it.
  struct SnapshotCache;

  void execute_one(const RunSpec& run, RunRecord& record, std::size_t worker);
  nftape::CampaignResult snapshot_execute(const RunSpec& run,
                                          const nftape::RunControl& control,
                                          SnapshotCache& cache);

  RunnerConfig config_;
  std::atomic<bool> cancelled_{false};
  std::vector<std::unique_ptr<SnapshotCache>> caches_;
  /// Campaign-wide progress, accumulated across run_batch calls. Only
  /// touched between batches (the pool itself guards it with a mutex while
  /// running), so no atomicity is needed here.
  Progress progress_;
};

/// Thread-safe streaming sink: one JSONL line per finished record, in
/// completion order. Plug into RunnerConfig::sinks (or on_record via
/// `write`).
class JsonlSink : public RecordSink {
 public:
  explicit JsonlSink(std::ostream& out, bool include_timing = false)
      : out_(out), timing_(include_timing) {}

  void write(const RunRecord& record);
  void on_record(const RunRecord& record) override { write(record); }

 private:
  std::ostream& out_;
  bool timing_;
  std::mutex mu_;
};

}  // namespace hsfi::orchestrator
