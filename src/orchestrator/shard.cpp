#include "orchestrator/shard.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "orchestrator/json_value.hpp"
#include "orchestrator/jsonl.hpp"

namespace hsfi::orchestrator {

namespace {

[[noreturn]] void bail(const std::string& what) {
  throw ShardError("shard: " + what);
}

[[noreturn]] void bail_errno(const std::string& what) {
  bail(what + ": " + std::strerror(errno));
}

/// fsync the directory containing `path`, so a rename into it is durable.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) bail_errno("open dir " + dir);
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    bail_errno("fsync dir " + dir);
  }
  ::close(fd);
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

constexpr std::string_view kMagic = "hsfi-ckpt-v1";

}  // namespace

std::vector<RunSpec> shard_runs(const std::vector<RunSpec>& runs,
                                std::uint32_t k, std::uint32_t n) {
  if (n == 0) bail("shard count must be positive");
  if (k >= n && !(k == 0 && n == 1)) {
    bail("shard index " + std::to_string(k) + " out of range for " +
         std::to_string(n) + " shards");
  }
  std::vector<RunSpec> mine;
  for (const auto& run : runs) {
    if (shard_of(run.seed, n) == k) mine.push_back(run);
  }
  return mine;
}

std::string shard_path(const std::string& out, std::uint32_t k,
                       std::uint32_t n) {
  if (n <= 1) return out;
  return out + ".shard" + std::to_string(k) + "of" + std::to_string(n);
}

std::string checkpoint_path(const std::string& shard_file) {
  return shard_file + ".ckpt";
}

std::optional<Checkpoint> read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();

  std::string error;
  const auto doc = parse_json(text.str(), &error);
  if (!doc) bail("corrupt checkpoint " + path + " (" + error + ")");
  const auto* magic = doc->find("magic");
  if (magic == nullptr || magic->text != kMagic) {
    bail("checkpoint " + path + " has wrong magic");
  }
  Checkpoint ckpt;
  const auto u64 = [&](const char* key, std::uint64_t& out) {
    const auto* v = doc->find(key);
    if (v == nullptr || !v->as_u64(out)) {
      bail("checkpoint " + path + " missing/bad field '" + key + "'");
    }
  };
  const auto* spec = doc->find("spec");
  if (spec == nullptr || spec->kind != JsonValue::Kind::kString ||
      spec->text.size() != 16) {
    bail("checkpoint " + path + " missing/bad field 'spec'");
  }
  ckpt.spec_digest = std::strtoull(spec->text.c_str(), nullptr, 16);
  std::uint64_t shard = 0, of = 0;
  u64("shard", shard);
  u64("of", of);
  ckpt.shard = static_cast<std::uint32_t>(shard);
  ckpt.of = static_cast<std::uint32_t>(of);
  u64("batches", ckpt.batches);
  u64("runs", ckpt.runs);
  u64("bytes", ckpt.bytes);
  const auto* done = doc->find("done");
  if (done == nullptr || done->kind != JsonValue::Kind::kBool) {
    bail("checkpoint " + path + " missing/bad field 'done'");
  }
  ckpt.done = done->boolean;
  return ckpt;
}

void write_text_durable(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) bail_errno("open " + tmp);
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      errno = err;
      bail_errno("write " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    bail_errno("fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    bail_errno("rename " + tmp + " -> " + path);
  }
  sync_parent_dir(path);
}

void write_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  JsonObject o;
  o.add("magic", kMagic);
  o.add("spec", hex64(ckpt.spec_digest));
  o.add_u64("shard", ckpt.shard);
  o.add_u64("of", ckpt.of);
  o.add_u64("batches", ckpt.batches);
  o.add_u64("runs", ckpt.runs);
  o.add_u64("bytes", ckpt.bytes);
  o.add_bool("done", ckpt.done);
  write_text_durable(path, o.str() + "\n");
}

DurableAppender::DurableAppender(const std::string& path,
                                 std::uint64_t keep_bytes)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) bail_errno("open " + path);
  // Crash recovery: drop everything past the last durable checkpoint
  // (torn lines, records whose sidecar update never landed).
  if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0) {
    bail_errno("ftruncate " + path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) bail_errno("lseek " + path);
  bytes_ = keep_bytes;
}

DurableAppender::~DurableAppender() {
  if (fd_ >= 0) ::close(fd_);
}

void DurableAppender::append(std::string_view text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd_, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      bail_errno("write " + path_);
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_ += text.size();
}

void DurableAppender::sync() {
  if (::fsync(fd_) != 0) bail_errno("fsync " + path_);
}

ShardResult run_sharded(Runner& runner, const std::vector<RunSpec>& runs,
                        const std::string& shard_file,
                        const Checkpoint& identity, const ShardOptions& opts) {
  Checkpoint ckpt = identity;
  ckpt.batches = 0;
  ckpt.runs = 0;
  ckpt.bytes = 0;
  ckpt.done = false;

  const std::string sidecar = checkpoint_path(shard_file);
  if (opts.resume) {
    if (const auto existing = read_checkpoint(sidecar)) {
      if (existing->spec_digest != identity.spec_digest) {
        bail("checkpoint " + sidecar +
             " belongs to a different campaign spec — refusing to splice");
      }
      if (existing->shard != identity.shard || existing->of != identity.of) {
        bail("checkpoint " + sidecar + " is for shard " +
             std::to_string(existing->shard) + "/" +
             std::to_string(existing->of) + ", not " +
             std::to_string(identity.shard) + "/" +
             std::to_string(identity.of));
      }
      if (existing->runs > runs.size()) {
        bail("checkpoint " + sidecar + " records " +
             std::to_string(existing->runs) + " runs but the shard only has " +
             std::to_string(runs.size()));
      }
      ckpt = *existing;
      ckpt.done = false;
    }
  }

  ShardResult result;
  result.restored = ckpt.runs;
  DurableAppender out(shard_file, ckpt.bytes);

  const std::size_t batch = opts.batch == 0 ? 1 : opts.batch;
  for (std::size_t i = ckpt.runs; i < runs.size(); i += batch) {
    const std::size_t count = std::min(batch, runs.size() - i);
    const std::vector<RunSpec> slice(runs.begin() + static_cast<long>(i),
                                     runs.begin() + static_cast<long>(i + count));
    auto records = runner.run_batch(slice);
    std::string lines;
    for (const auto& rec : records) {
      lines += to_jsonl(rec, opts.include_timing);
      lines += '\n';
    }
    // Data first, cursor second: the sidecar must never point past bytes
    // that are not yet on disk.
    out.append(lines);
    out.sync();
    ckpt.batches += 1;
    ckpt.runs += count;
    ckpt.bytes = out.bytes();
    write_checkpoint(sidecar, ckpt);
    for (auto& rec : records) result.executed.push_back(std::move(rec));
    if (opts.after_batch) opts.after_batch(ckpt);
  }

  ckpt.done = true;
  write_checkpoint(sidecar, ckpt);
  return result;
}

std::size_t merge_shards(const std::vector<RunSpec>& runs,
                         const std::string& out, std::uint32_t of) {
  if (of < 2) bail("merge needs at least 2 shards");
  // Load each shard's lines; cursors advance in lock-step with the global
  // index walk, which both orders the merge and proves completeness.
  std::vector<std::vector<std::string>> lines(of);
  std::vector<std::size_t> cursor(of, 0);
  for (std::uint32_t k = 0; k < of; ++k) {
    const std::string path = shard_path(out, k, of);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      bail("missing shard file " + path + " (did shard " + std::to_string(k) +
           " run?)");
    }
    std::string line;
    while (std::getline(in, line)) lines[k].push_back(line);
  }

  std::ostringstream merged;
  for (const auto& run : runs) {
    const std::uint32_t k = shard_of(run.seed, of);
    if (cursor[k] >= lines[k].size()) {
      bail("shard " + std::to_string(k) + " is missing run " +
           std::to_string(run.index) + " ('" + run.campaign.name +
           "') — resume it to completion first");
    }
    const std::string& line = lines[k][cursor[k]];
    const std::string prefix = "{\"run\":" + std::to_string(run.index) + ",";
    if (line.compare(0, prefix.size(), prefix) != 0) {
      bail("shard " + std::to_string(k) + " record " +
           std::to_string(cursor[k]) + " does not start with " + prefix +
           " — shard files do not match this spec");
    }
    ++cursor[k];
    merged << line << '\n';
  }
  for (std::uint32_t k = 0; k < of; ++k) {
    if (cursor[k] != lines[k].size()) {
      bail("shard " + std::to_string(k) + " has " +
           std::to_string(lines[k].size() - cursor[k]) +
           " extra records beyond the spec's expansion");
    }
  }

  std::ofstream dest(out, std::ios::binary | std::ios::trunc);
  if (!dest) bail("cannot open " + out);
  dest << merged.str();
  if (!dest) bail("write failed for " + out);
  return runs.size();
}

}  // namespace hsfi::orchestrator
