// Declarative campaign sweeps: a parameter grid over the paper's fault
// axes, expanded into independent runs.
//
// The paper's evaluation (§4.3.1–§4.3.4, Table 4, Fig. 9) is a matrix of
// campaigns: fault type × corrupted symbol × injector direction × workload,
// each repeated for statistical confidence. NFTAPE drove those sequentially
// against one physical testbed; here every expanded run carries its own
// TestbedConfig and derived seed, so an executor may run them in any order,
// on any thread, and the results depend only on the grid and the base seed
// (FINJ-style declarative campaign configs, Netti et al.).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/injector_config.hpp"
#include "nftape/campaign.hpp"
#include "nftape/testbed.hpp"
#include "sim/time.hpp"

namespace hsfi::orchestrator {

/// One point on the fault axis: a named injector configuration.
struct FaultPoint {
  std::string name;
  /// nullopt = fault-free baseline run.
  std::optional<core::InjectorConfig> config;
  /// One-line human description (shown by `run_sweep --list-faults`);
  /// optional — expansion and run naming never read it.
  std::string description;
};

/// Which link direction(s) the fault is programmed into (the device sits
/// between node 0 and the switch and injects independently per direction).
enum class FaultDirection : std::uint8_t {
  kToSwitch,    ///< node -> switch (left-to-right)
  kFromSwitch,  ///< switch -> node (right-to-left)
  kBoth,
};

[[nodiscard]] std::string_view to_string(FaultDirection d) noexcept;

/// One point on the workload-intensity axis.
struct IntensityPoint {
  std::string name;
  sim::Duration udp_interval = sim::microseconds(100);
  std::size_t burst_size = 1;
  std::size_t payload_size = 64;
};

/// The full grid. Axes with no entries contribute a single neutral point,
/// so the minimal sweep is faults alone.
struct SweepSpec {
  std::string name = "sweep";
  /// Template for every run: measurement window, workload defaults,
  /// serial-vs-direct programming, and the medium — `base.medium` selects
  /// which Fabric realization every expanded run executes on (the grid
  /// itself is medium-agnostic; only the fault axis needs to target the
  /// chosen medium's symbol stream). Fault, intensity, name, and seed
  /// fields are overwritten per grid point.
  nftape::CampaignSpec base;
  /// Template for every run's private testbed; seed overwritten per run.
  nftape::TestbedConfig testbed;
  /// Simulated settle after Testbed::start() before the campaign begins
  /// (mapping must converge). 0 = auto: map_period + reply window + 50 ms.
  sim::Duration startup_settle = 0;

  std::vector<FaultPoint> faults;
  std::vector<FaultDirection> directions = {FaultDirection::kBoth};
  std::vector<IntensityPoint> intensities;
  std::size_t replicates = 1;
  std::uint64_t base_seed = 1;
};

/// One expanded run: everything a worker needs to execute it in isolation.
struct RunSpec {
  std::size_t index = 0;    ///< position in the expanded grid
  std::uint64_t seed = 0;   ///< derive_seed(base_seed, index)
  sim::Duration startup_settle = 0;  ///< resolved (never 0)
  /// Closed-loop provenance (src/adaptive): which controller round issued
  /// this run and under which strategy. Static sweeps leave `strategy`
  /// empty, and the JSONL record then carries neither field — the legacy
  /// record format is a strict prefix-compatible subset.
  std::uint32_t round = 0;
  std::string strategy;
  nftape::CampaignSpec campaign;
  nftape::TestbedConfig testbed;
};

/// Expands the grid in fault-major order:
/// fault × direction × intensity × replicate. Run names are
/// "<fault>/<direction>/<intensity>/r<replicate>"; seeds are splitmix64
/// derivations of (base_seed, index), so the expansion is a pure function
/// of the spec.
[[nodiscard]] std::vector<RunSpec> expand(const SweepSpec& sweep);

}  // namespace hsfi::orchestrator
