// Incremental per-cell statistics for the streaming analysis plane.
//
// A StreamingCell is the online form of the batch analysis::CellAccumulator
// entry: records fold in one at a time, in any order, or arrive pre-folded
// from another shard via merge() — and every path yields bit-identical
// totals, because the underlying analysis::CellStats folding is commutative
// and associative (plain counter sums plus a bucket-wise histogram merge).
// On top of the shared core it answers the streaming questions the batch
// path answers only at round barriers: the Wilson 95% interval around the
// cell's manifestation rate right now, and whether that interval has
// resolved tightly enough to stop spending runs on the cell.
#pragma once

#include <cstdint>

#include "adaptive/stats.hpp"
#include "analysis/accumulator.hpp"

namespace hsfi::orchestrator {
struct RunRecord;
}

namespace hsfi::monitor {

class StreamingCell {
 public:
  /// Folds one finished run record in (outcome, breakdown, injections,
  /// duplicates, latency histogram).
  void fold(const orchestrator::RunRecord& record);

  /// Raw fold for out-of-process shards (JSONL tail mode carries no latency
  /// histogram — pass nullptr).
  void fold(bool ok, const analysis::ManifestationBreakdown& manifestations,
            std::uint64_t injections, std::uint64_t duplicates,
            const analysis::Histogram* latency = nullptr) {
    stats_.fold(ok, manifestations, injections, duplicates, latency);
  }

  /// Shard merge: accumulates another cell's totals into this one.
  void merge(const StreamingCell& other) { stats_.merge(other.stats_); }

  [[nodiscard]] const analysis::CellStats& stats() const noexcept {
    return stats_;
  }

  /// Streaming Wilson interval over the manifestation rate (manifested
  /// firings / injections) as of the records folded so far.
  [[nodiscard]] adaptive::WilsonInterval wilson(double z = 1.96) const {
    return adaptive::wilson_interval(stats_.manifested(), stats_.injections,
                                     z);
  }

  /// True once the Wilson interval is narrower than `max_width` with at
  /// least `min_injections` firings behind it — the generic "this cell's
  /// rate is known, stop spending runs here" test the streaming feed and
  /// strategies build their early-cancel rules on.
  [[nodiscard]] bool resolved(double max_width,
                              std::uint64_t min_injections) const {
    if (stats_.injections < min_injections) return false;
    const auto w = wilson();
    return w.hi - w.lo <= max_width;
  }

  friend bool operator==(const StreamingCell&, const StreamingCell&) = default;

 private:
  analysis::CellStats stats_;
};

}  // namespace hsfi::monitor
