#include "monitor/service.hpp"

#include "analysis/manifestation.hpp"
#include "nftape/medium.hpp"

namespace hsfi::monitor {

MonitorService::MonitorService(MonitorConfig config)
    : config_(std::move(config)) {}

MonitorService::Entry& MonitorService::entry_locked(const std::string& group,
                                                    const std::string& cell) {
  const auto it = cells_.find(Key{group, cell});
  if (it != cells_.end()) return it->second;
  return cells_
      .emplace(Key{group, cell}, Entry{StreamingCell{},
                                       LatencyDrift{config_.drift}})
      .first->second;
}

void MonitorService::on_record(const orchestrator::RunRecord& record) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_locked(std::string(nftape::to_string(record.medium)),
                          orchestrator::cell_key(record.name));
  e.cell.fold(record);
  if (record.outcome == orchestrator::RunOutcome::kOk) {
    e.latency.add(record.result.manifestation_latency);
  }
  ++records_;
}

void MonitorService::ingest(const ParsedRecord& record) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e =
      entry_locked(record.medium, orchestrator::cell_key(record.name));
  e.cell.fold(record.ok(), record.manifestations, record.injections,
              record.duplicates, nullptr);
  ++records_;
}

std::size_t MonitorService::ingest_jsonl(std::string_view chunk) {
  std::size_t accepted = 0;
  std::size_t start = 0;
  while (start <= chunk.size()) {
    std::size_t nl = chunk.find('\n', start);
    if (nl == std::string_view::npos) nl = chunk.size();
    const std::string_view line = chunk.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    if (const auto rec = parse_record(line)) {
      ingest(*rec);
      ++accepted;
    } else {
      const std::lock_guard<std::mutex> lock(mu_);
      ++malformed_;
    }
  }
  return accepted;
}

std::uint64_t MonitorService::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::uint64_t MonitorService::malformed_lines() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return malformed_;
}

StreamingCell MonitorService::cell(const std::string& cell_name,
                                   const std::string& group) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cells_.find(Key{group, cell_name});
  return it == cells_.end() ? StreamingCell{} : it->second.cell;
}

std::vector<CellView> MonitorService::cells() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CellView> out;
  out.reserve(cells_.size());
  for (const auto& [key, entry] : cells_) {
    out.push_back({key.first, key.second, entry.cell});
  }
  return out;
}

std::vector<DriftFlag> MonitorService::drift_flags_locked() const {
  std::vector<DriftFlag> flags;
  // Rate divergence: every cell name present in two or more groups, each
  // pair compared once in key order. The map is (group, cell)-sorted, so
  // collect per cell name first.
  std::map<std::string, std::vector<const Key*>> by_cell;
  for (const auto& [key, entry] : cells_) {
    (void)entry;
    by_cell[key.second].push_back(&key);
  }
  for (const auto& [cell_name, keys] : by_cell) {
    for (std::size_t a = 0; a < keys.size(); ++a) {
      for (std::size_t b = a + 1; b < keys.size(); ++b) {
        const auto& sa = cells_.at(*keys[a]).cell.stats();
        const auto& sb = cells_.at(*keys[b]).cell.stats();
        const auto gap =
            rate_divergence(sa.manifested(), sa.injections, sb.manifested(),
                            sb.injections, config_.drift);
        if (!gap) continue;
        flags.push_back({DriftKind::kRateDivergence, cell_name,
                         keys[a]->first, keys[b]->first, *gap});
      }
    }
  }
  for (const auto& [key, entry] : cells_) {
    const auto tv = entry.latency.shift();
    if (!tv || *tv < config_.drift.latency_shift_threshold) continue;
    flags.push_back(
        {DriftKind::kLatencyShift, key.second, key.first, "", *tv});
  }
  return flags;
}

std::vector<DriftFlag> MonitorService::drift_flags() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return drift_flags_locked();
}

nftape::Report MonitorService::table(const std::string& title) const {
  const std::lock_guard<std::mutex> lock(mu_);
  nftape::Report report(title);
  report.set_header({"group", "cell", "runs", "injections",
                     "manifested (Wilson 95%)", "classes", "drift"});
  const auto flags = drift_flags_locked();
  for (const auto& [key, entry] : cells_) {
    const auto& s = entry.cell.stats();
    std::string drift;
    for (const auto& f : flags) {
      if (f.cell != key.second) continue;
      if (f.kind == DriftKind::kRateDivergence &&
          (f.group_a == key.first || f.group_b == key.first)) {
        if (!drift.empty()) drift += ' ';
        drift += "rate!";
      } else if (f.kind == DriftKind::kLatencyShift &&
                 f.group_a == key.first) {
        if (!drift.empty()) drift += ' ';
        drift += "latency!";
      }
    }
    report.add_row(
        {key.first, key.second,
         nftape::cell("%llu", (unsigned long long)s.runs),
         nftape::cell("%llu", (unsigned long long)s.injections),
         nftape::rate_cell(s.manifested(), s.injections),
         analysis::describe(s.manifestations),
         drift.empty() ? std::string("-") : std::move(drift)});
  }
  for (const auto& f : flags) report.add_note(f.describe());
  if (malformed_ != 0) {
    report.add_note(
        nftape::cell("%llu malformed JSONL line(s) dropped by tail mode",
                     (unsigned long long)malformed_));
  }
  return report;
}

}  // namespace hsfi::monitor
