#include "monitor/jsonl_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

namespace hsfi::monitor {

namespace {

/// Byte cursor over one line. All helpers return false on malformed input
/// and leave the caller to abandon the whole line.
struct Cursor {
  const char* p;
  const char* end;

  [[nodiscard]] bool done() const noexcept { return p >= end; }
  [[nodiscard]] char peek() const noexcept { return *p; }
  void skip_ws() {
    while (!done() && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (done() || *p != c) return false;
    ++p;
    return true;
  }
};

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses a quoted JSON string (cursor on the opening quote), undoing
/// json_escape: standard short escapes plus \u00XX control characters.
/// Non-BMP input never occurs (the emitter only writes \u00XX), but
/// general \uXXXX is decoded to UTF-8 anyway so foreign JSONL parses too.
bool parse_string(Cursor& c, std::string& out) {
  if (!c.consume('"')) return false;
  out.clear();
  while (!c.done()) {
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.done()) return false;
    const char esc = *c.p++;
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (c.end - c.p < 4) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const int d = hex_digit(*c.p++);
          if (d < 0) return false;
          code = code * 16 + static_cast<unsigned>(d);
        }
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // ran off the line inside the string
}

/// A number / null / bool value, returned as the raw token. Strings are
/// handled separately so field dispatch can keep escapes intact.
bool parse_scalar_token(Cursor& c, std::string& token) {
  c.skip_ws();
  token.clear();
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\r') break;
    token += ch;
    ++c.p;
  }
  return !token.empty();
}

bool token_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty() || token[0] == '-') return false;
  char* end = nullptr;
  out = std::strtoull(token.c_str(), &end, 10);
  // Fixed-decimal fields (loss_pct, window_ms) parse up to the '.'; the
  // monitor folds none of them as u64, but reject so a schema drift where
  // an integer field grows a fraction is caught instead of truncated.
  return end == token.c_str() + token.size();
}

}  // namespace

std::optional<ParsedRecord> parse_record(std::string_view line) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.consume('{')) return std::nullopt;

  ParsedRecord rec;
  bool first = true;
  for (;;) {
    c.skip_ws();
    if (c.done()) return std::nullopt;  // line ended before '}'
    if (c.peek() == '}') {
      ++c.p;
      break;
    }
    if (!first && !c.consume(',')) return std::nullopt;
    first = false;

    std::string key;
    if (!parse_string(c, key)) return std::nullopt;
    if (!c.consume(':')) return std::nullopt;

    std::uint64_t* dst = nullptr;
    if (key == "run") dst = &rec.run;
    else if (key == "seed") dst = &rec.seed;
    else if (key == "round") dst = &rec.round;
    else if (key == "injections") dst = &rec.injections;
    else if (key == "duplicates") dst = &rec.duplicates;
    else {
      for (const auto m : analysis::all_manifestations()) {
        if (key == analysis::jsonl_key(m)) {
          dst = &rec.manifestations[m];
          break;
        }
      }
    }

    c.skip_ws();
    if (c.done()) return std::nullopt;
    if (c.peek() == '"') {
      // A string where a folded counter belongs is schema drift, not an
      // ignorable extra — reject the line rather than silently dropping.
      if (dst != nullptr) return std::nullopt;
      std::string value;
      if (!parse_string(c, value)) return std::nullopt;
      if (key == "name") rec.name = std::move(value);
      else if (key == "outcome") rec.outcome = std::move(value);
      else if (key == "medium") rec.medium = std::move(value);
      else if (key == "strategy") rec.strategy = std::move(value);
      // unknown string fields (error, ...) are skipped
      continue;
    }
    std::string token;
    if (!parse_scalar_token(c, token)) return std::nullopt;
    if (dst != nullptr && !token_u64(token, *dst)) return std::nullopt;
    // other numeric fields (sent, loss_pct, wall_ms, null, ...) skipped
  }

  c.skip_ws();
  if (!c.done()) return std::nullopt;  // trailing garbage after '}'
  if (rec.name.empty() || rec.outcome.empty()) return std::nullopt;
  return rec;
}

std::size_t JsonlTailer::poll(
    const std::function<void(const ParsedRecord&)>& deliver) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;  // shard not started yet

  // Truncation/rotation check: a file shorter than the saved offset is a
  // new incarnation, not a continuation. Seeking blindly would park the
  // cursor at EOF and the tailer would silently read nothing forever —
  // and the torn-line carry from the old file must not be glued onto the
  // new file's first line.
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size < offset_) {
    offset_ = 0;
    partial_.clear();
    ++truncations_;
  }
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in) return 0;

  std::string chunk;
  char buffer[4096];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    chunk.append(buffer, static_cast<std::size_t>(in.gcount()));
    if (in.eof()) break;
  }
  offset_ += chunk.size();

  std::size_t delivered = 0;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = chunk.find('\n', start);
    if (nl == std::string::npos) break;
    partial_.append(chunk, start, nl - start);
    start = nl + 1;
    if (!partial_.empty()) {
      if (const auto rec = parse_record(partial_)) {
        deliver(*rec);
        ++delivered;
      } else {
        ++malformed_;
      }
    }
    partial_.clear();
  }
  partial_.append(chunk, start, chunk.size() - start);
  return delivered;
}

}  // namespace hsfi::monitor
