// Online drift detection over the streaming cell statistics.
//
// Two detectors, both deterministic functions of the records folded so far:
//
//  * Manifestation-rate divergence: the same fault × direction cell,
//    realized over two different groups (media today, topologies tomorrow),
//    whose Wilson intervals have pulled apart — the z-quantile CIs are
//    disjoint with at least min_injections firings on each side. This is
//    the paper's cross-network comparison ("failure analysis ... performed
//    simultaneously over both of these networks") run continuously instead
//    of post-hoc.
//
//  * Latency-distribution shift: a cell whose firing → first-effect delay
//    histogram over a rolling window of recent runs has moved away from the
//    baseline frozen over the cell's first runs, measured as total
//    variation distance between the normalized bucket distributions. A
//    fault whose manifestations suddenly take a different path (e.g. CRC
//    drops giving way to long-period timeouts) shifts buckets long before
//    the aggregate rate moves.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"

namespace hsfi::monitor {

struct DriftConfig {
  /// Normal quantile for the divergence intervals (1.96 = 95%).
  double z = 1.96;
  /// Firings required on each side before rate divergence can fire —
  /// below this the Wilson intervals are too wide to disjoin spuriously
  /// anyway, but the floor documents intent and guards small-n edge cases.
  std::uint64_t min_injections = 64;
  /// Ok-runs frozen into the latency baseline before comparison starts.
  std::size_t baseline_runs = 8;
  /// Rolling window of recent runs compared against the baseline.
  std::size_t window_runs = 8;
  /// Latency samples required on both sides before a shift can fire.
  std::uint64_t min_latency_samples = 32;
  /// Total-variation distance (0..1) above which a shift is flagged.
  double latency_shift_threshold = 0.25;
};

enum class DriftKind : std::uint8_t {
  kRateDivergence,  ///< same cell, two groups, disjoint Wilson intervals
  kLatencyShift,    ///< rolling latency window moved off the cell baseline
};

[[nodiscard]] std::string_view to_string(DriftKind k) noexcept;

struct DriftFlag {
  DriftKind kind = DriftKind::kRateDivergence;
  std::string cell;     ///< "<fault>/<direction>"
  std::string group_a;  ///< first group (divergence) / the group (shift)
  std::string group_b;  ///< second group (divergence only)
  /// Gap between the disjoint intervals (divergence), or the total
  /// variation distance (shift).
  double value = 0.0;

  /// One-line rendering, e.g.
  /// "rate-divergence seu-00FF/both: myrinet vs fc (gap 0.18)".
  [[nodiscard]] std::string describe() const;
};

/// Disjointness test for two binomial rates at DriftConfig::z. Returns the
/// gap between the intervals when they are disjoint and both sides have
/// min_injections, nullopt otherwise.
[[nodiscard]] std::optional<double> rate_divergence(
    std::uint64_t successes_a, std::uint64_t trials_a,
    std::uint64_t successes_b, std::uint64_t trials_b,
    const DriftConfig& config);

/// Rolling latency-shift tracker for one cell's run stream. Baseline
/// absorbs the first baseline_runs histogram-bearing runs; after that every
/// run enters a window of the last window_runs, and shift() compares window
/// against baseline.
class LatencyDrift {
 public:
  explicit LatencyDrift(DriftConfig config = {});

  /// Folds one finished run's latency histogram (empty histograms are
  /// ignored — a masked-only run says nothing about latency shape).
  void add(const analysis::Histogram& run_latency);

  /// Total variation distance between the rolling window and the baseline
  /// when both are populated past the config floors, nullopt otherwise.
  [[nodiscard]] std::optional<double> shift() const;

  [[nodiscard]] const analysis::Histogram& baseline() const noexcept {
    return baseline_;
  }
  [[nodiscard]] std::uint64_t window_samples() const noexcept {
    return window_count_;
  }

 private:
  DriftConfig config_;
  analysis::Histogram baseline_;
  std::size_t baseline_folds_ = 0;
  /// Per-run bucket counts of the last window_runs runs, plus their sum —
  /// subtraction on expiry keeps the rolling merge O(buckets) per run.
  std::deque<std::vector<std::uint64_t>> window_;
  std::vector<std::uint64_t> window_sum_;
  std::uint64_t window_count_ = 0;
};

}  // namespace hsfi::monitor
