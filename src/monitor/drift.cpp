#include "monitor/drift.hpp"

#include <algorithm>
#include <cstdio>

#include "adaptive/stats.hpp"

namespace hsfi::monitor {

std::string_view to_string(DriftKind k) noexcept {
  switch (k) {
    case DriftKind::kRateDivergence: return "rate-divergence";
    case DriftKind::kLatencyShift: return "latency-shift";
  }
  return "?";
}

std::string DriftFlag::describe() const {
  char buf[256];
  if (kind == DriftKind::kRateDivergence) {
    std::snprintf(buf, sizeof(buf), "rate-divergence %s: %s vs %s (gap %.2f)",
                  cell.c_str(), group_a.c_str(), group_b.c_str(), value);
  } else {
    std::snprintf(buf, sizeof(buf), "latency-shift %s [%s] (tv %.2f)",
                  cell.c_str(), group_a.c_str(), value);
  }
  return buf;
}

std::optional<double> rate_divergence(std::uint64_t successes_a,
                                      std::uint64_t trials_a,
                                      std::uint64_t successes_b,
                                      std::uint64_t trials_b,
                                      const DriftConfig& config) {
  if (trials_a < config.min_injections || trials_b < config.min_injections) {
    return std::nullopt;
  }
  const auto a = adaptive::wilson_interval(successes_a, trials_a, config.z);
  const auto b = adaptive::wilson_interval(successes_b, trials_b, config.z);
  if (a.hi < b.lo) return b.lo - a.hi;
  if (b.hi < a.lo) return a.lo - b.hi;
  return std::nullopt;
}

LatencyDrift::LatencyDrift(DriftConfig config) : config_(std::move(config)) {
  if (config_.baseline_runs == 0) config_.baseline_runs = 1;
  if (config_.window_runs == 0) config_.window_runs = 1;
}

void LatencyDrift::add(const analysis::Histogram& run_latency) {
  if (run_latency.count() == 0) return;
  if (baseline_folds_ < config_.baseline_runs) {
    baseline_.merge(run_latency);
    ++baseline_folds_;
    return;
  }
  if (window_sum_.empty()) {
    window_sum_.assign(run_latency.buckets().size(), 0);
  }
  if (run_latency.buckets().size() != window_sum_.size()) return;  // bounds mismatch
  window_.push_back(run_latency.buckets());
  for (std::size_t i = 0; i < window_sum_.size(); ++i) {
    window_sum_[i] += window_.back()[i];
  }
  window_count_ += run_latency.count();
  while (window_.size() > config_.window_runs) {
    const auto& expiring = window_.front();
    for (std::size_t i = 0; i < window_sum_.size(); ++i) {
      window_sum_[i] -= expiring[i];
      window_count_ -= expiring[i];
    }
    window_.pop_front();
  }
}

std::optional<double> LatencyDrift::shift() const {
  if (baseline_folds_ < config_.baseline_runs) return std::nullopt;
  if (baseline_.count() < config_.min_latency_samples ||
      window_count_ < config_.min_latency_samples) {
    return std::nullopt;
  }
  const auto& base = baseline_.buckets();
  if (base.size() != window_sum_.size()) return std::nullopt;
  const double bn = static_cast<double>(baseline_.count());
  const double wn = static_cast<double>(window_count_);
  double tv = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double p = static_cast<double>(base[i]) / bn;
    const double q = static_cast<double>(window_sum_[i]) / wn;
    tv += std::abs(p - q);
  }
  return tv / 2.0;
}

}  // namespace hsfi::monitor
