// The online monitoring service: the paper's "monitoring" half run as a
// live analysis plane instead of post-hoc scripts.
//
// A MonitorService ingests the run-record stream while the campaign is
// still executing — in-process as an orchestrator::RecordSink fired per
// completed run, or out-of-process by tailing a shard's JSONL file — and
// maintains, per (group, cell):
//
//  * a monitor::StreamingCell (incremental Wilson 95% interval and 8-class
//    manifestation breakdown, bit-identical to the batch accumulator), and
//  * a monitor::LatencyDrift tracker (rolling latency window vs baseline),
//
// where group is the fabric medium ("myrinet"/"fc") and cell the
// "<fault>/<direction>" key the adaptive loop steers by. drift_flags()
// recomputes the cross-group rate-divergence and per-cell latency-shift
// verdicts from the current state; table() renders the live per-cell view.
//
// Thread model: every mutator and every reader takes one mutex. The runner
// already serializes sink callbacks, but the whole point of a live monitor
// is that *another* thread (a renderer, a controller) reads concurrently —
// the CHAOS-style rule is that observation cost stays off the simulation
// hot path: workers pay one map lookup and a few counter adds per completed
// run (microseconds against a multi-second run), never per event.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "monitor/drift.hpp"
#include "monitor/jsonl_reader.hpp"
#include "monitor/streaming_cell.hpp"
#include "nftape/report.hpp"
#include "orchestrator/runner.hpp"

namespace hsfi::monitor {

struct MonitorConfig {
  DriftConfig drift;
};

/// One (group, cell) snapshot row as table() renders it.
struct CellView {
  std::string group;
  std::string cell;
  StreamingCell stats;
};

class MonitorService final : public orchestrator::RecordSink {
 public:
  explicit MonitorService(MonitorConfig config = {});

  /// RecordSink: fold one finished run (in-process attachment point —
  /// plug into orchestrator::RunnerConfig::sinks).
  void on_record(const orchestrator::RunRecord& record) override;

  /// Tail-mode fold (no latency histogram in JSONL records).
  void ingest(const ParsedRecord& record);

  /// Splits a chunk of JSONL text into lines and ingests each complete
  /// parsed record; malformed lines are counted and dropped. Returns the
  /// number of records accepted.
  std::size_t ingest_jsonl(std::string_view chunk);

  /// Records folded so far (ok or not, both count).
  [[nodiscard]] std::uint64_t records() const;
  [[nodiscard]] std::uint64_t malformed_lines() const;

  /// Snapshot of one cell's streaming stats (default group = "myrinet").
  /// Returns an empty cell when nothing has been folded for the key.
  [[nodiscard]] StreamingCell cell(const std::string& cell_name,
                                   const std::string& group = "myrinet") const;

  /// Snapshot of every (group, cell), key-sorted — deterministic given the
  /// folded record multiset.
  [[nodiscard]] std::vector<CellView> cells() const;

  /// Current drift verdicts, deterministically ordered (rate divergences
  /// first, cell-name order; then latency shifts). Rate divergence is a
  /// pure function of the folded record multiset; latency shift depends on
  /// fold order through its rolling window (deterministic with one worker,
  /// completion-order-sensitive otherwise — documented in DESIGN §10).
  [[nodiscard]] std::vector<DriftFlag> drift_flags() const;

  /// The live per-cell table: Wilson CI, class breakdown, drift flags.
  [[nodiscard]] nftape::Report table(const std::string& title) const;

 private:
  struct Entry {
    StreamingCell cell;
    LatencyDrift latency;
  };
  using Key = std::pair<std::string, std::string>;  ///< (group, cell)

  Entry& entry_locked(const std::string& group, const std::string& cell);
  [[nodiscard]] std::vector<DriftFlag> drift_flags_locked() const;

  MonitorConfig config_;
  mutable std::mutex mu_;
  std::map<Key, Entry> cells_;
  std::uint64_t records_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace hsfi::monitor
