#include "monitor/streaming_cell.hpp"

#include "orchestrator/runner.hpp"

namespace hsfi::monitor {

void StreamingCell::fold(const orchestrator::RunRecord& record) {
  const bool ok = record.outcome == orchestrator::RunOutcome::kOk;
  stats_.fold(ok, record.result.manifestations, record.result.injections,
              record.result.duplicates(), &record.result.manifestation_latency);
}

}  // namespace hsfi::monitor
