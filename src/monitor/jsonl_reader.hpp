// The parsing half of the orchestrator's JSONL record contract, for
// out-of-process shards: a campaign shard writes one record per line
// (orchestrator::to_jsonl), and a monitor on the other side of the file
// tails it and folds each record into its streaming cells.
//
// Hand-rolled like the emission side (orchestrator/jsonl.hpp): records are
// flat single-level objects with string and number values only, and the
// container image carries no JSON library. The parser accepts exactly that
// shape — it is not a general JSON parser — but it is strict about it:
// malformed lines are rejected (nullopt), never half-ingested, so a torn
// write at the tail of a live file cannot corrupt cell totals.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/manifestation.hpp"

namespace hsfi::monitor {

/// The fields of one parsed run record that the streaming cells fold.
/// Latency histograms are not serialized in JSONL, so tail-mode cells carry
/// empty latency sketches — documented limitation of out-of-process feeds.
struct ParsedRecord {
  std::string name;
  std::string outcome;
  std::string medium = "myrinet";  ///< emitted only when not the default
  std::string strategy;            ///< empty for static sweeps
  std::uint64_t run = 0;
  std::uint64_t seed = 0;
  std::uint64_t round = 0;
  std::uint64_t injections = 0;
  std::uint64_t duplicates = 0;
  analysis::ManifestationBreakdown manifestations;

  [[nodiscard]] bool ok() const noexcept { return outcome == "ok"; }
};

/// Parses one JSONL record line (as produced by orchestrator::to_jsonl).
/// Returns nullopt when the line is not a complete flat JSON object or a
/// known field has the wrong type. Unknown fields are skipped, so the
/// parser tolerates records from newer emitters.
[[nodiscard]] std::optional<ParsedRecord> parse_record(std::string_view line);

/// Incremental reader for a live JSONL file: each poll() picks up where the
/// last one stopped, delivers every newly completed line's record, and
/// holds any trailing partial line until the writer finishes it. The
/// out-of-process leg of the streaming analysis plane.
class JsonlTailer {
 public:
  explicit JsonlTailer(std::string path) : path_(std::move(path)) {}

  /// Reads newly appended complete lines and invokes `deliver` per parsed
  /// record, in file order. Returns the number delivered. Lines that fail
  /// to parse are counted in malformed() and dropped. A missing file is
  /// not an error (the shard may not have started yet) — returns 0.
  /// A file shorter than the saved offset means the writer truncated or
  /// rotated it: the tailer restarts from byte 0, drops the torn-line
  /// carry from the old incarnation, and counts it in truncations().
  std::size_t poll(const std::function<void(const ParsedRecord&)>& deliver);

  [[nodiscard]] std::uint64_t malformed() const noexcept { return malformed_; }
  /// Times the file shrank under the tailer (truncation or rotation-in-
  /// place); each one restarted the offset so tailing resumed.
  [[nodiscard]] std::uint64_t truncations() const noexcept {
    return truncations_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::string partial_;
  std::uint64_t malformed_ = 0;
  std::uint64_t truncations_ = 0;
};

}  // namespace hsfi::monitor
