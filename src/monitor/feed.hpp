// StreamingFeed: the mid-batch bridge between the orchestrator's record
// stream and a closed-loop consumer (adaptive::Controller).
//
// The batch-barrier loop only lets a Strategy see results between rounds;
// the feed hands each record over the moment its run completes, so the
// controller can stop spending workers on a cell whose Wilson bound has
// already resolved. The feed itself stays strategy-agnostic: it folds
// records into per-cell StreamingCells (and forwards to an optional
// MonitorService for the live table / drift view), and exposes the
// streaming queries — publish count, per-cell snapshots, the generic
// resolved() test. Deciding *whether* a resolved cell cancels its
// remaining runs belongs to the controller (deterministic mode defers
// everything to the barrier; live mode skips — see DESIGN §10).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "monitor/service.hpp"
#include "monitor/streaming_cell.hpp"
#include "orchestrator/runner.hpp"

namespace hsfi::monitor {

class StreamingFeed {
 public:
  /// `service` is optional and not owned; when set, every published record
  /// is forwarded so the live table and drift detectors see the same
  /// stream. Must outlive the feed.
  explicit StreamingFeed(MonitorService* service = nullptr)
      : service_(service) {}

  /// Folds one finished record (called mid-batch by the controller, under
  /// the runner's callback mutex; thread-safe regardless).
  void publish(const orchestrator::RunRecord& record) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      cells_[orchestrator::cell_key(record.name)].fold(record);
      ++published_;
    }
    if (service_ != nullptr) service_->on_record(record);
  }

  /// Records published so far (across rounds).
  [[nodiscard]] std::uint64_t published() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return published_;
  }

  /// Snapshot of one cell's streaming stats ("<fault>/<direction>" key);
  /// empty cell when nothing has been published for it.
  [[nodiscard]] StreamingCell cell(const std::string& cell_name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cells_.find(cell_name);
    return it == cells_.end() ? StreamingCell{} : it->second;
  }

  /// The generic early-cancel test: the cell's Wilson interval has
  /// resolved to `max_width` on `min_injections`+ firings.
  [[nodiscard]] bool resolved(const std::string& cell_name, double max_width,
                              std::uint64_t min_injections) const {
    return cell(cell_name).resolved(max_width, min_injections);
  }

  [[nodiscard]] MonitorService* service() const noexcept { return service_; }

 private:
  MonitorService* service_;
  mutable std::mutex mu_;
  std::map<std::string, StreamingCell> cells_;
  std::uint64_t published_ = 0;
};

}  // namespace hsfi::monitor
