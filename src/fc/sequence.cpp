#include "fc/sequence.hpp"

#include <utility>

namespace hsfi::fc {

std::vector<FcFrame> SequenceBuilder::build(const FcHeader& header,
                                            std::vector<std::uint8_t> payload,
                                            std::size_t chunk) {
  if (chunk == 0 || chunk > kFcMaxPayload) chunk = kFcMaxPayload;
  std::vector<FcFrame> frames;
  const std::size_t count =
      payload.empty() ? 1 : (payload.size() + chunk - 1) / chunk;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FcFrame f;
    f.header = header;
    f.header.seq_cnt = static_cast<std::uint16_t>(i);
    const std::size_t begin = i * chunk;
    const std::size_t end =
        begin + chunk < payload.size() ? begin + chunk : payload.size();
    f.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                     payload.begin() + static_cast<std::ptrdiff_t>(end));
    f.sof = i == 0 ? OrderedSet::kSofI3 : OrderedSet::kSofN3;
    f.eof = i + 1 == count ? OrderedSet::kEofT : OrderedSet::kEofN;
    frames.push_back(std::move(f));
  }
  return frames;
}

void SequenceReassembler::feed(const FcFrame& frame) {
  const Key key{frame.header.s_id, frame.header.seq_id};
  auto it = open_.find(key);

  if (frame.sof == OrderedSet::kSofI3) {
    // A fresh initiation preempts any unfinished sequence with this key.
    if (it != open_.end()) {
      ++stats_.sequences_aborted;
      open_.erase(it);
    }
    if (frame.header.seq_cnt != 0) {
      ++stats_.frames_rejected;
      return;
    }
    Open open;
    open.next_cnt = 1;
    open.payload = frame.payload;
    ++stats_.frames_accepted;
    if (frame.eof == OrderedSet::kEofT) {
      ++stats_.sequences_completed;
      if (handler_) handler_(frame.header.s_id, frame.header.seq_id,
                             std::move(open.payload));
      return;
    }
    open_.emplace(key, std::move(open));
    return;
  }

  // Continuation frame: must belong to an open sequence and be in order.
  if (it == open_.end()) {
    ++stats_.frames_rejected;
    return;
  }
  if (frame.header.seq_cnt != it->second.next_cnt) {
    // Class 3 cannot recover a hole: abandon the sequence.
    ++stats_.frames_rejected;
    ++stats_.sequences_aborted;
    open_.erase(it);
    return;
  }
  ++stats_.frames_accepted;
  it->second.next_cnt = static_cast<std::uint16_t>(it->second.next_cnt + 1);
  it->second.payload.insert(it->second.payload.end(), frame.payload.begin(),
                            frame.payload.end());
  if (frame.eof == OrderedSet::kEofT) {
    ++stats_.sequences_completed;
    auto payload = std::move(it->second.payload);
    open_.erase(it);
    if (handler_) handler_(frame.header.s_id, frame.header.seq_id,
                           std::move(payload));
  }
}

}  // namespace hsfi::fc
