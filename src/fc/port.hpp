// An FC N_Port pair endpoint with buffer-to-buffer credit flow control.
//
// Transmit: frames queue and are serialized only while BB_Credit > 0; each
// frame consumes one credit, and each R_RDY ordered set received returns
// one (FC-PH class-3 flow control).
//
// Receive: the decoded-character stream is scanned for ordered sets (K28.5
// leads a four-character set); SOF opens a frame body, EOF closes it, the
// CRC-32 is checked, and the frame is buffered. When the host drains a
// buffer, an R_RDY is returned to the sender.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "fc/frame.hpp"
#include "link/channel.hpp"
#include "link/symbol_pool.hpp"
#include "sim/simulator.hpp"

namespace hsfi::fc {

class FcPort final : public link::SymbolSink {
 public:
  struct Config {
    std::uint32_t port_id = 0;  ///< 24-bit N_Port identifier
    /// Credits we hold toward the peer (peer's advertised buffer count).
    std::size_t bb_credit = 4;
    /// Our receive buffers (what we advertise to the peer).
    std::size_t rx_buffers = 4;
    /// 1.0625 Gb/s => one 10-bit character every ~9.4 ns.
    sim::Duration character_period = sim::picoseconds(9'412);
    sim::Duration rx_processing_time = sim::microseconds(5);
    /// Credit-recovery timeout (the model's stand-in for FC-PH link timeout
    /// plus credit recovery): a transmit stall that sees no R_RDY for this
    /// long means credits were lost to corruption — class 3 never returns
    /// them — so the port resets its count to bb_credit and carries on.
    /// 0 disables (a corrupted R_RDY then wedges the link permanently).
    sim::Duration credit_recovery_timeout = sim::milliseconds(1);
    std::size_t tx_queue_frames = 64;
    std::size_t chunk_symbols = 64;
    std::size_t max_tx_ahead_chars = 128;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t crc_errors = 0;
    std::uint64_t rrdy_sent = 0;
    std::uint64_t rrdy_received = 0;
    std::uint64_t credit_stall_events = 0;
    std::uint64_t credit_recoveries = 0;  ///< stalls broken by the timeout
    std::uint64_t rx_overflows = 0;
    std::uint64_t malformed_sets = 0;   ///< K28.5 set that parsed to nothing
    std::uint64_t stray_data = 0;       ///< data characters outside a frame
    std::uint64_t tx_queue_drops = 0;
  };

  /// Timestamped failure events for campaign monitors (mirrors
  /// myrinet::HostInterface::RxError — each maps to one taxonomy class).
  enum class Event : std::uint8_t {
    kCrcError,     ///< CRC-32 mismatch; frame dropped
    kMalformedSet, ///< K28.5-led set that parsed to nothing
    kRxOverflow,   ///< sender overran our advertised credit
    kCreditStall,  ///< BB credit exhausted; transmit blocked
    kStrayData,    ///< data characters outside any frame
  };

  FcPort(sim::Simulator& simulator, std::string name, Config config);

  FcPort(const FcPort&) = delete;
  FcPort& operator=(const FcPort&) = delete;

  void attach(link::Channel& rx, link::Channel& tx);

  /// Queues a frame. Returns false when the send queue is full.
  bool send(FcFrame frame);

  /// Scenario hook: transmits `count` R_RDY ordered sets no freed buffer
  /// backs — lying flow control. Each one hands the peer a BB credit it
  /// should not have, letting it overrun our advertised receive buffers.
  /// Bypasses the transmit queue (ordered sets interleave with frames on a
  /// real link) and leaves rrdy_sent untouched: stats record honest
  /// protocol behavior, the injected lies are accounted by the scenario
  /// driver as injections.
  void inject_rrdy(std::size_t count);

  using FrameHandler = std::function<void(FcFrame frame, sim::SimTime when)>;
  void on_frame(FrameHandler handler) { handler_ = std::move(handler); }

  using EventHandler = std::function<void(Event e, sim::SimTime when)>;
  void on_event(EventHandler handler) { event_ = std::move(handler); }

  void clear_stats() noexcept { stats_ = Stats{}; }

  /// Campaign reset to the fresh-construction state: statistics, BB
  /// credits, transmit queue, and any half-parsed receive state (the link
  /// is assumed drained — a corrupted R_RDY earlier may have leaked peer
  /// credits, which this restores, the "known good state" contract).
  void reset_for_campaign();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t credits() const noexcept { return credits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Snapshot state: credit count, transmit cursor, half-parsed receive
  /// state, and counters. EventIds stay valid across a fabric fork (the
  /// simulator restores queue slots/generations verbatim); frame/event
  /// handlers are per-run wiring and stay attached.
  struct State {
    std::deque<std::vector<link::Symbol>> tx_queue;
    std::vector<link::Symbol> tx_current;
    std::size_t tx_offset = 0;
    std::size_t credits = 0;
    bool tx_pump_scheduled = false;
    bool stalled_reported = false;
    sim::EventId credit_recovery_event = sim::kInvalidEventId;
    std::vector<Char8> set_accum;
    bool in_frame = false;
    OrderedSet sof_seen = OrderedSet::kSofI3;
    std::vector<std::uint8_t> body;
    std::deque<FcFrame> rx_buffers;
    bool rx_drain_scheduled = false;
    Stats stats;
  };

  [[nodiscard]] State capture_state() const {
    return State{tx_queue_,  tx_current_,
                 tx_offset_, credits_,
                 tx_pump_scheduled_,    stalled_reported_,
                 credit_recovery_event_, set_accum_,
                 in_frame_,  sof_seen_,
                 body_,      rx_buffers_,
                 rx_drain_scheduled_,    stats_};
  }
  void restore_state(const State& state) {
    tx_queue_ = state.tx_queue;
    tx_current_ = state.tx_current;
    tx_offset_ = state.tx_offset;
    credits_ = state.credits;
    tx_pump_scheduled_ = state.tx_pump_scheduled;
    stalled_reported_ = state.stalled_reported;
    credit_recovery_event_ = state.credit_recovery_event;
    set_accum_ = state.set_accum;
    in_frame_ = state.in_frame;
    sof_seen_ = state.sof_seen;
    body_ = state.body;
    rx_buffers_ = state.rx_buffers;
    rx_drain_scheduled_ = state.rx_drain_scheduled;
    stats_ = state.stats;
  }

  // link::SymbolSink
  void on_burst(const link::Burst& burst) override;

 private:
  void pump_tx();
  void schedule_pump_tx();
  void feed(link::Symbol s, sim::SimTime when);
  void handle_ordered_set(OrderedSet os, sim::SimTime when);
  void complete_frame(OrderedSet eof, sim::SimTime when);
  void schedule_credit_recovery();
  void cancel_credit_recovery();
  void schedule_rx_drain();
  void emit_event(Event e, sim::SimTime when) {
    if (event_) event_(e, when);
  }

  sim::Simulator& simulator_;
  std::string name_;
  Config config_;
  link::Channel* tx_ = nullptr;
  FrameHandler handler_;
  EventHandler event_;

  // Transmit. Frame serializations go through a buffer pool: a completed
  // frame's symbol vector is parked and its capacity reused by the next
  // send() instead of reallocating per frame. Excluded from State capture
  // (pure capacity cache, no protocol state).
  link::SymbolBufferPool tx_pool_;
  std::deque<std::vector<link::Symbol>> tx_queue_;
  std::vector<link::Symbol> tx_current_;
  std::size_t tx_offset_ = 0;
  std::size_t credits_;
  bool tx_pump_scheduled_ = false;
  bool stalled_reported_ = false;
  sim::EventId credit_recovery_event_ = sim::kInvalidEventId;

  // Receive.
  std::vector<Char8> set_accum_;   ///< partial ordered set (K28.5-led)
  bool in_frame_ = false;
  OrderedSet sof_seen_ = OrderedSet::kSofI3;
  std::vector<std::uint8_t> body_;
  std::deque<FcFrame> rx_buffers_;
  bool rx_drain_scheduled_ = false;

  Stats stats_;
};

}  // namespace hsfi::fc
