// An FC N_Port pair endpoint with buffer-to-buffer credit flow control.
//
// Transmit: frames queue and are serialized only while BB_Credit > 0; each
// frame consumes one credit, and each R_RDY ordered set received returns
// one (FC-PH class-3 flow control).
//
// Receive: the decoded-character stream is scanned for ordered sets (K28.5
// leads a four-character set); SOF opens a frame body, EOF closes it, the
// CRC-32 is checked, and the frame is buffered. When the host drains a
// buffer, an R_RDY is returned to the sender.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "fc/frame.hpp"
#include "link/channel.hpp"
#include "sim/simulator.hpp"

namespace hsfi::fc {

class FcPort final : public link::SymbolSink {
 public:
  struct Config {
    std::uint32_t port_id = 0;  ///< 24-bit N_Port identifier
    /// Credits we hold toward the peer (peer's advertised buffer count).
    std::size_t bb_credit = 4;
    /// Our receive buffers (what we advertise to the peer).
    std::size_t rx_buffers = 4;
    /// 1.0625 Gb/s => one 10-bit character every ~9.4 ns.
    sim::Duration character_period = sim::picoseconds(9'412);
    sim::Duration rx_processing_time = sim::microseconds(5);
    std::size_t tx_queue_frames = 64;
    std::size_t chunk_symbols = 64;
    std::size_t max_tx_ahead_chars = 128;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t crc_errors = 0;
    std::uint64_t rrdy_sent = 0;
    std::uint64_t rrdy_received = 0;
    std::uint64_t credit_stall_events = 0;
    std::uint64_t rx_overflows = 0;
    std::uint64_t malformed_sets = 0;   ///< K28.5 set that parsed to nothing
    std::uint64_t stray_data = 0;       ///< data characters outside a frame
    std::uint64_t tx_queue_drops = 0;
  };

  FcPort(sim::Simulator& simulator, std::string name, Config config);

  FcPort(const FcPort&) = delete;
  FcPort& operator=(const FcPort&) = delete;

  void attach(link::Channel& rx, link::Channel& tx);

  /// Queues a frame. Returns false when the send queue is full.
  bool send(FcFrame frame);

  using FrameHandler = std::function<void(FcFrame frame, sim::SimTime when)>;
  void on_frame(FrameHandler handler) { handler_ = std::move(handler); }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t credits() const noexcept { return credits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  // link::SymbolSink
  void on_burst(const link::Burst& burst) override;

 private:
  void pump_tx();
  void schedule_pump_tx();
  void feed(link::Symbol s, sim::SimTime when);
  void handle_ordered_set(OrderedSet os);
  void complete_frame(OrderedSet eof);
  void schedule_rx_drain();

  sim::Simulator& simulator_;
  std::string name_;
  Config config_;
  link::Channel* tx_ = nullptr;
  FrameHandler handler_;

  // Transmit.
  std::deque<std::vector<link::Symbol>> tx_queue_;
  std::vector<link::Symbol> tx_current_;
  std::size_t tx_offset_ = 0;
  std::size_t credits_;
  bool tx_pump_scheduled_ = false;
  bool stalled_reported_ = false;

  // Receive.
  std::vector<Char8> set_accum_;   ///< partial ordered set (K28.5-led)
  bool in_frame_ = false;
  OrderedSet sof_seen_ = OrderedSet::kSofI3;
  std::vector<std::uint8_t> body_;
  std::deque<FcFrame> rx_buffers_;
  bool rx_drain_scheduled_ = false;

  Stats stats_;
};

}  // namespace hsfi::fc
