// Fibre Channel FC-2 framing over the decoded-character domain.
//
// A frame on the wire is: SOF ordered set, 24-byte header, payload
// (0..2112 bytes), CRC-32, EOF ordered set. Ordered sets are four
// transmission characters led by K28.5 and are represented here in the
// decoded domain as link::Symbol sequences with the control flag standing
// in for the K flag (the FCPHY's output, which is what the injector board
// sees).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fc/enc8b10b.hpp"
#include "link/symbol.hpp"

namespace hsfi::fc {

/// Ordered-set identifiers used by this model.
enum class OrderedSet : std::uint8_t {
  kIdle,
  kRRdy,   ///< receiver ready: returns one buffer-to-buffer credit
  kSofI3,  ///< start of frame, class 3, initiate
  kSofN3,  ///< start of frame, class 3, normal
  kEofN,   ///< end of frame, normal
  kEofT,   ///< end of frame, terminate
};

/// The four decoded characters of an ordered set (K28.5 first).
[[nodiscard]] std::array<Char8, 4> ordered_set_chars(OrderedSet os) noexcept;

/// Recognizes an ordered set from four decoded characters.
[[nodiscard]] std::optional<OrderedSet> parse_ordered_set(
    std::span<const Char8, 4> chars) noexcept;

/// Ordered set as link symbols (control flag = K flag).
[[nodiscard]] std::vector<link::Symbol> ordered_set_symbols(OrderedSet os);

/// Allocation-free variant for hot transmit paths (R_RDY returns, idles).
[[nodiscard]] std::array<link::Symbol, 4> ordered_set_symbol_array(
    OrderedSet os) noexcept;

inline constexpr std::size_t kFcHeaderSize = 24;
inline constexpr std::size_t kFcMaxPayload = 2112;

/// FC-2 frame header (simplified field set, 24 bytes on the wire).
struct FcHeader {
  std::uint8_t r_ctl = 0;
  std::uint32_t d_id = 0;  ///< 24-bit destination port id
  std::uint8_t cs_ctl = 0;
  std::uint32_t s_id = 0;  ///< 24-bit source port id
  std::uint8_t type = 0;
  std::uint32_t f_ctl = 0;  ///< 24-bit
  std::uint8_t seq_id = 0;
  std::uint8_t df_ctl = 0;
  std::uint16_t seq_cnt = 0;
  std::uint16_t ox_id = 0;
  std::uint16_t rx_id = 0;
  std::uint32_t parameter = 0;

  friend bool operator==(const FcHeader&, const FcHeader&) = default;
};

struct FcFrame {
  FcHeader header{};
  std::vector<std::uint8_t> payload;
  /// Delimiters: first frame of a sequence opens with SOFi3, continuation
  /// frames with SOFn3; intermediate frames close with EOFn, the last with
  /// EOFt. The receive path records what actually arrived.
  OrderedSet sof = OrderedSet::kSofI3;
  OrderedSet eof = OrderedSet::kEofT;
};

[[nodiscard]] std::vector<std::uint8_t> encode_header(const FcHeader& h);
[[nodiscard]] std::optional<FcHeader> parse_header(
    std::span<const std::uint8_t> bytes);

/// Serializes SOF + header + payload + CRC-32 + EOF into decoded symbols.
[[nodiscard]] std::vector<link::Symbol> frame_to_symbols(const FcFrame& frame);

/// Same, but reuses `out`'s storage (cleared first) — the port transmit
/// path serializes every frame into a pooled buffer instead of allocating.
void frame_to_symbols_into(const FcFrame& frame,
                           std::vector<link::Symbol>& out);

enum class FcParseStatus : std::uint8_t {
  kOk,
  kTooShort,
  kCrcError,
};

struct FcParsed {
  FcParseStatus status = FcParseStatus::kTooShort;
  FcFrame frame{};
};

/// Validates CRC-32 and parses header+payload from the bytes between SOF
/// and EOF.
[[nodiscard]] FcParsed parse_frame_body(std::span<const std::uint8_t> bytes);

}  // namespace hsfi::fc
