// IEEE CRC-32 (polynomial 0x04C11DB7, reflected, init/xorout 0xFFFFFFFF),
// the FC-2 frame CRC mandated by FC-PH [ANS94].
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace hsfi::fc {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? (c >> 1) ^ 0xEDB88320u : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

class Crc32 {
 public:
  constexpr void update(std::uint8_t byte) noexcept {
    state_ = detail::kCrc32Table[(state_ ^ byte) & 0xFF] ^ (state_ >> 8);
  }
  constexpr void update(std::span<const std::uint8_t> bytes) noexcept {
    for (const auto b : bytes) update(b);
  }
  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return state_ ^ 0xFFFFFFFFu;
  }
  constexpr void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

[[nodiscard]] constexpr std::uint32_t crc32(
    std::span<const std::uint8_t> bytes) noexcept {
  Crc32 c;
  c.update(bytes);
  return c.value();
}

}  // namespace hsfi::fc
