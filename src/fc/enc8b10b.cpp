#include "fc/enc8b10b.hpp"

#include <array>
#include <bit>

namespace hsfi::fc {

namespace {

struct CodePair {
  std::uint8_t minus;  ///< used when entering disparity is RD-
  std::uint8_t plus;   ///< used when entering disparity is RD+
};

// 5b/6b data table, indexed by the low five bits (EDCBA); codes are abcdei.
constexpr std::array<CodePair, 32> k5b6bData = {{
    {0b100111, 0b011000},  // D.00
    {0b011101, 0b100010},  // D.01
    {0b101101, 0b010010},  // D.02
    {0b110001, 0b110001},  // D.03
    {0b110101, 0b001010},  // D.04
    {0b101001, 0b101001},  // D.05
    {0b011001, 0b011001},  // D.06
    {0b111000, 0b000111},  // D.07
    {0b111001, 0b000110},  // D.08
    {0b100101, 0b100101},  // D.09
    {0b010101, 0b010101},  // D.10
    {0b110100, 0b110100},  // D.11
    {0b001101, 0b001101},  // D.12
    {0b101100, 0b101100},  // D.13
    {0b011100, 0b011100},  // D.14
    {0b010111, 0b101000},  // D.15
    {0b011011, 0b100100},  // D.16
    {0b100011, 0b100011},  // D.17
    {0b010011, 0b010011},  // D.18
    {0b110010, 0b110010},  // D.19
    {0b001011, 0b001011},  // D.20
    {0b101010, 0b101010},  // D.21
    {0b011010, 0b011010},  // D.22
    {0b111010, 0b000101},  // D.23
    {0b110011, 0b001100},  // D.24
    {0b100110, 0b100110},  // D.25
    {0b010110, 0b010110},  // D.26
    {0b110110, 0b001001},  // D.27
    {0b001110, 0b001110},  // D.28
    {0b101110, 0b010001},  // D.29
    {0b011110, 0b100001},  // D.30
    {0b101011, 0b010100},  // D.31
}};

// 3b/4b data table, indexed by the high three bits (HGF); codes are fghj.
// Index 7 is the primary P7 encoding; A7 handled separately.
constexpr std::array<CodePair, 8> k3b4bData = {{
    {0b1011, 0b0100},  // D.x.0
    {0b1001, 0b1001},  // D.x.1
    {0b0101, 0b0101},  // D.x.2
    {0b1100, 0b0011},  // D.x.3
    {0b1101, 0b0010},  // D.x.4
    {0b1010, 0b1010},  // D.x.5
    {0b0110, 0b0110},  // D.x.6
    {0b1110, 0b0001},  // D.x.P7
}};
constexpr CodePair kA7 = {0b0111, 0b1000};

// 3b/4b special (K) table.
constexpr std::array<CodePair, 8> k3b4bSpecial = {{
    {0b1011, 0b0100},  // K.x.0
    {0b0110, 0b1001},  // K.x.1
    {0b1010, 0b0101},  // K.x.2
    {0b1100, 0b0011},  // K.x.3
    {0b1101, 0b0010},  // K.x.4
    {0b0101, 0b1010},  // K.x.5
    {0b1001, 0b0110},  // K.x.6
    {0b0111, 0b1000},  // K.x.7
}};

[[nodiscard]] constexpr bool valid_k(std::uint8_t value) noexcept {
  const std::uint8_t x = value & 0x1F;
  const std::uint8_t y = value >> 5;
  if (x == 28) return true;
  return y == 7 && (x == 23 || x == 27 || x == 29 || x == 30);
}

[[nodiscard]] constexpr std::uint8_t k5b6b_special(std::uint8_t x,
                                                   bool minus) noexcept {
  if (x == 28) return minus ? 0b001111 : 0b110000;
  // K23/27/29/30 share the 5b/6b blocks of the same-numbered D codes.
  const CodePair& p = k5b6bData[x];
  return minus ? p.minus : p.plus;
}

[[nodiscard]] constexpr Disparity apply_block(Disparity rd, std::uint8_t code,
                                              int width) noexcept {
  const int ones = std::popcount(static_cast<unsigned>(code));
  const int disparity = 2 * ones - width;
  return disparity == 0 ? rd : flip(rd);
}

/// Whether D.x.A7 replaces D.x.P7 to avoid a run of five identical bits.
[[nodiscard]] constexpr bool use_a7(std::uint8_t x, Disparity rd_mid) noexcept {
  if (rd_mid == Disparity::kMinus) return x == 17 || x == 18 || x == 20;
  return x == 11 || x == 13 || x == 14;
}

std::optional<std::uint16_t> encode_one(Char8 c, Disparity rd,
                                        Disparity& rd_out) {
  const std::uint8_t x = c.value & 0x1F;
  const std::uint8_t y = c.value >> 5;
  const bool minus = rd == Disparity::kMinus;

  std::uint8_t six = 0;
  if (c.is_k) {
    if (!valid_k(c.value)) return std::nullopt;
    six = k5b6b_special(x, minus);
  } else {
    six = minus ? k5b6bData[x].minus : k5b6bData[x].plus;
  }
  const Disparity rd_mid = apply_block(rd, six, 6);

  CodePair pair{};
  if (c.is_k) {
    pair = k3b4bSpecial[y];
  } else if (y == 7 && use_a7(x, rd_mid)) {
    pair = kA7;
  } else {
    pair = k3b4bData[y];
  }
  const std::uint8_t four =
      rd_mid == Disparity::kMinus ? pair.minus : pair.plus;
  rd_out = apply_block(rd_mid, four, 4);
  return static_cast<std::uint16_t>((six << 4) | four);
}

struct DecodeTables {
  // code -> packed char (bit 8 = K flag) or -1, per entering disparity.
  std::array<std::int16_t, 1024> minus{};
  std::array<std::int16_t, 1024> plus{};

  DecodeTables() {
    minus.fill(-1);
    plus.fill(-1);
    for (int k = 0; k <= 1; ++k) {
      for (int v = 0; v < 256; ++v) {
        const Char8 c{static_cast<std::uint8_t>(v), k == 1};
        if (c.is_k && !valid_k(c.value)) continue;
        Disparity rd_out = Disparity::kMinus;
        if (const auto m = encode_one(c, Disparity::kMinus, rd_out)) {
          minus[*m] = static_cast<std::int16_t>(v | (k << 8));
        }
        if (const auto p = encode_one(c, Disparity::kPlus, rd_out)) {
          plus[*p] = static_cast<std::int16_t>(v | (k << 8));
        }
      }
    }
  }
};

const DecodeTables& decode_tables() {
  static const DecodeTables tables;
  return tables;
}

}  // namespace

std::optional<EncodeResult> encode_8b10b(Char8 c, Disparity rd) {
  Disparity rd_out = rd;
  const auto code = encode_one(c, rd, rd_out);
  if (!code) return std::nullopt;
  return EncodeResult{*code, rd_out};
}

DecodeResult decode_8b10b(std::uint16_t code, Disparity rd) {
  DecodeResult out;
  code &= 0x3FF;
  const auto& tables = decode_tables();
  const std::int16_t expected = rd == Disparity::kMinus
                                    ? tables.minus[code]
                                    : tables.plus[code];
  const std::int16_t other = rd == Disparity::kMinus ? tables.plus[code]
                                                     : tables.minus[code];
  std::int16_t packed = expected;
  if (packed < 0 && other >= 0) {
    // Legal group, but not for the current running disparity.
    out.disparity_error = true;
    packed = other;
  }
  if (packed < 0) {
    out.code_violation = true;
    out.rd = apply_block(rd, static_cast<std::uint8_t>(code >> 4), 6);
    out.rd = apply_block(out.rd, static_cast<std::uint8_t>(code & 0xF), 4);
    return out;
  }
  out.character = Char8{static_cast<std::uint8_t>(packed & 0xFF),
                        (packed & 0x100) != 0};
  out.rd = apply_block(rd, static_cast<std::uint8_t>(code >> 4), 6);
  out.rd = apply_block(out.rd, static_cast<std::uint8_t>(code & 0xF), 4);
  return out;
}

}  // namespace hsfi::fc
