#include "fc/port.hpp"

#include <utility>

namespace hsfi::fc {

FcPort::FcPort(sim::Simulator& simulator, std::string name, Config config)
    : simulator_(simulator),
      name_(std::move(name)),
      config_(config),
      credits_(config.bb_credit) {}

void FcPort::attach(link::Channel& rx, link::Channel& tx) {
  rx.attach(*this);
  tx_ = &tx;
}

bool FcPort::send(FcFrame frame) {
  if (tx_queue_.size() >= config_.tx_queue_frames) {
    ++stats_.tx_queue_drops;
    return false;
  }
  std::vector<link::Symbol> symbols = tx_pool_.acquire();
  frame_to_symbols_into(frame, symbols);
  tx_queue_.push_back(std::move(symbols));
  schedule_pump_tx();
  return true;
}

void FcPort::inject_rrdy(std::size_t count) {
  if (tx_ == nullptr) return;
  const auto rrdy = ordered_set_symbol_array(OrderedSet::kRRdy);
  for (std::size_t i = 0; i < count; ++i) {
    tx_->transmit(rrdy);
  }
}

void FcPort::schedule_pump_tx() {
  if (tx_pump_scheduled_) return;
  tx_pump_scheduled_ = true;
  simulator_.schedule_in(0, [this] {
    tx_pump_scheduled_ = false;
    pump_tx();
  });
}

void FcPort::pump_tx() {
  if (tx_ == nullptr) return;
  const auto ahead_limit =
      config_.character_period *
      static_cast<sim::Duration>(config_.max_tx_ahead_chars);
  for (;;) {
    if (tx_offset_ >= tx_current_.size()) {
      if (tx_queue_.empty()) return;
      if (credits_ == 0) {
        if (!stalled_reported_) {
          ++stats_.credit_stall_events;
          stalled_reported_ = true;
          emit_event(Event::kCreditStall, simulator_.now());
        }
        schedule_credit_recovery();
        return;  // resumes when an R_RDY returns a credit
      }
      stalled_reported_ = false;
      --credits_;
      tx_current_ = std::move(tx_queue_.front());
      tx_queue_.pop_front();
      tx_offset_ = 0;
    }
    const sim::SimTime free_at = tx_->transmitter_free_at();
    if (free_at > simulator_.now() + ahead_limit) {
      if (!tx_pump_scheduled_) {
        tx_pump_scheduled_ = true;
        simulator_.schedule_at(free_at - ahead_limit, [this] {
          tx_pump_scheduled_ = false;
          pump_tx();
        });
      }
      return;
    }
    const std::size_t n =
        std::min(config_.chunk_symbols, tx_current_.size() - tx_offset_);
    tx_->transmit(
        std::span<const link::Symbol>(tx_current_.data() + tx_offset_, n));
    tx_offset_ += n;
    if (tx_offset_ >= tx_current_.size()) {
      ++stats_.frames_sent;
      tx_pool_.release(std::move(tx_current_));
      tx_current_.clear();
      tx_offset_ = 0;
    }
  }
}

void FcPort::on_burst(const link::Burst& burst) {
  if (!burst.has_view()) {
    for (std::size_t i = 0; i < burst.symbols.size(); ++i) {
      feed(burst.symbols[i], burst.arrival(i));
    }
    return;
  }
  // Batched scan over the SoA view: control symbols and partial ordered
  // sets go through the per-symbol feed (they carry all the protocol state
  // transitions); pure data runs inside a frame body append in bulk.
  const std::size_t n = burst.symbols.size();
  std::size_t i = 0;
  while (i < n) {
    if (!set_accum_.empty() || burst.symbols[i].control) {
      feed(burst.symbols[i], burst.arrival(i));
      ++i;
      continue;
    }
    std::size_t run_end = link::find_next_control(burst, i);
    if (in_frame_) {
      // Stop the bulk append where an ordered set could begin; between
      // control symbols every data character lands in the open body.
      body_.insert(body_.end(), burst.data.begin() + static_cast<std::ptrdiff_t>(i),
                   burst.data.begin() + static_cast<std::ptrdiff_t>(run_end));
      i = run_end;
    } else {
      for (std::size_t j = i; j < run_end; ++j) {
        ++stats_.stray_data;
        emit_event(Event::kStrayData, burst.arrival(j));
      }
      i = run_end;
    }
  }
}

void FcPort::feed(link::Symbol s, sim::SimTime when) {
  if (!set_accum_.empty()) {
    set_accum_.push_back(Char8{s.data, s.control});
    if (set_accum_.size() == 4) {
      const auto os = parse_ordered_set(
          std::span<const Char8, 4>(set_accum_.data(), 4));
      set_accum_.clear();
      if (!os) {
        ++stats_.malformed_sets;
        emit_event(Event::kMalformedSet, when);
        // A broken SOF/EOF poisons any open frame.
        if (in_frame_) {
          in_frame_ = false;
          body_.clear();
        }
        return;
      }
      handle_ordered_set(*os, when);
    }
    return;
  }
  if (s.control && Char8{s.data, true} == K(28, 5)) {
    set_accum_.push_back(Char8{s.data, true});
    return;
  }
  if (!s.control && in_frame_) {
    body_.push_back(s.data);
    return;
  }
  ++stats_.stray_data;
  emit_event(Event::kStrayData, when);
}

void FcPort::handle_ordered_set(OrderedSet os, sim::SimTime when) {
  switch (os) {
    case OrderedSet::kIdle:
      break;
    case OrderedSet::kRRdy:
      ++stats_.rrdy_received;
      ++credits_;
      // A credit came back, so the peer is alive: any pending stall
      // timeout was a false alarm.
      cancel_credit_recovery();
      schedule_pump_tx();
      break;
    case OrderedSet::kSofI3:
    case OrderedSet::kSofN3:
      in_frame_ = true;
      sof_seen_ = os;
      body_.clear();
      break;
    case OrderedSet::kEofN:
    case OrderedSet::kEofT:
      if (in_frame_) complete_frame(os, when);
      in_frame_ = false;
      break;
  }
}

void FcPort::complete_frame(OrderedSet eof, sim::SimTime when) {
  FcParsed parsed = parse_frame_body(body_);
  body_.clear();
  parsed.frame.sof = sof_seen_;
  parsed.frame.eof = eof;
  if (parsed.status == FcParseStatus::kCrcError) {
    ++stats_.crc_errors;
    emit_event(Event::kCrcError, when);
    return;
  }
  if (parsed.status != FcParseStatus::kOk) {
    ++stats_.malformed_sets;
    emit_event(Event::kMalformedSet, when);
    return;
  }
  if (rx_buffers_.size() >= config_.rx_buffers) {
    ++stats_.rx_overflows;  // sender overran our advertised credit
    emit_event(Event::kRxOverflow, when);
    return;
  }
  rx_buffers_.push_back(std::move(parsed.frame));
  schedule_rx_drain();
}

void FcPort::schedule_credit_recovery() {
  if (config_.credit_recovery_timeout <= 0) return;
  if (credit_recovery_event_ != sim::kInvalidEventId) return;
  credit_recovery_event_ = simulator_.schedule_in(
      config_.credit_recovery_timeout, [this] {
        credit_recovery_event_ = sim::kInvalidEventId;
        if (credits_ != 0) return;  // recovered on its own meanwhile
        // No R_RDY for a full timeout: the returns were corrupted in
        // flight and class 3 will never resend them. Reset to the login
        // value, the way a real port's link timeout + credit recovery
        // brings a wedged link back.
        credits_ = config_.bb_credit;
        ++stats_.credit_recoveries;
        schedule_pump_tx();
      });
}

void FcPort::cancel_credit_recovery() {
  if (credit_recovery_event_ == sim::kInvalidEventId) return;
  simulator_.cancel(credit_recovery_event_);
  credit_recovery_event_ = sim::kInvalidEventId;
}

void FcPort::reset_for_campaign() {
  stats_ = Stats{};
  credits_ = config_.bb_credit;
  stalled_reported_ = false;
  cancel_credit_recovery();
  tx_queue_.clear();
  tx_current_.clear();
  tx_offset_ = 0;
  set_accum_.clear();
  in_frame_ = false;
  body_.clear();
  rx_buffers_.clear();
  // Pending pump/drain wakeups stay scheduled; both no-op on empty state.
}

void FcPort::schedule_rx_drain() {
  if (rx_drain_scheduled_ || rx_buffers_.empty()) return;
  rx_drain_scheduled_ = true;
  simulator_.schedule_in(config_.rx_processing_time, [this] {
    rx_drain_scheduled_ = false;
    if (rx_buffers_.empty()) return;
    FcFrame frame = std::move(rx_buffers_.front());
    rx_buffers_.pop_front();
    ++stats_.frames_received;
    // Buffer freed: return a credit to the sender.
    if (tx_ != nullptr) {
      tx_->transmit(ordered_set_symbol_array(OrderedSet::kRRdy));
      ++stats_.rrdy_sent;
    }
    if (handler_) handler_(std::move(frame), simulator_.now());
    schedule_rx_drain();
  });
}

}  // namespace hsfi::fc
