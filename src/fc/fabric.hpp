// A Fibre Channel fabric element (FC switch), class-3 semantics.
//
// The paper's board carries an FCPHY specifically so the injector can sit
// in Fibre Channel topologies; a fabric element makes those topologies
// buildable: N ports, each a full BB-credit link endpoint, store-and-
// forward by destination port identifier. Routing is by D_ID domain (the
// top byte of the 24-bit address), the way FC fabrics partition address
// space; frames with no route are discarded, which is exactly class-3
// behavior ("datagram" class, no acknowledgements).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fc/port.hpp"
#include "link/channel.hpp"
#include "sim/simulator.hpp"

namespace hsfi::fc {

class FcFabric {
 public:
  struct Config {
    std::size_t num_ports = 8;
    FcPort::Config port = {};
  };

  struct Stats {
    std::uint64_t frames_forwarded = 0;
    std::uint64_t frames_discarded = 0;  ///< no route for D_ID
  };

  FcFabric(sim::Simulator& simulator, std::string name, Config config);

  FcFabric(const FcFabric&) = delete;
  FcFabric& operator=(const FcFabric&) = delete;

  /// Connects fabric port `port`: `rx` carries symbols in, `tx` out.
  void attach_port(std::size_t port, link::Channel& rx, link::Channel& tx);

  /// Routes destination domain `domain` (d_id >> 16) out of `port`.
  void set_route(std::uint8_t domain, std::size_t port);

  /// Tap on every class-3 silent discard (no route for the D_ID) — the
  /// misroute observable an injection campaign correlates against.
  using DiscardHandler = std::function<void(const FcFrame&, sim::SimTime)>;
  void on_discard(DiscardHandler handler) { discard_ = std::move(handler); }

  /// Campaign reset: fabric statistics plus every port's state (stats,
  /// credits, queues) back to fresh-construction values.
  void reset_for_campaign();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FcPort& port(std::size_t i) const { return *ports_.at(i); }
  [[nodiscard]] FcPort& port(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Snapshot state: per-port state plus forwarding counters. Routes are
  /// topology (static after construction) and are not captured.
  struct State {
    std::vector<FcPort::State> ports;
    Stats stats;
  };

  [[nodiscard]] State capture_state() const {
    State state;
    state.ports.reserve(ports_.size());
    for (const auto& p : ports_) state.ports.push_back(p->capture_state());
    state.stats = stats_;
    return state;
  }
  void restore_state(const State& state) {
    for (std::size_t i = 0; i < ports_.size(); ++i) {
      ports_[i]->restore_state(state.ports[i]);
    }
    stats_ = state.stats;
  }

 private:
  void forward(FcFrame frame, sim::SimTime when);

  sim::Simulator& simulator_;
  std::string name_;
  std::vector<std::unique_ptr<FcPort>> ports_;
  std::map<std::uint8_t, std::size_t> routes_;
  DiscardHandler discard_;
  Stats stats_;
};

}  // namespace hsfi::fc
