#include "fc/fabric.hpp"

#include <utility>

namespace hsfi::fc {

FcFabric::FcFabric(sim::Simulator& simulator, std::string name, Config config)
    : simulator_(simulator), name_(std::move(name)) {
  ports_.reserve(config.num_ports);
  for (std::size_t i = 0; i < config.num_ports; ++i) {
    auto port = std::make_unique<FcPort>(
        simulator_, name_ + ".p" + std::to_string(i), config.port);
    port->on_frame([this](FcFrame frame, sim::SimTime when) {
      forward(std::move(frame), when);
    });
    ports_.push_back(std::move(port));
  }
}

void FcFabric::attach_port(std::size_t port, link::Channel& rx,
                           link::Channel& tx) {
  ports_.at(port)->attach(rx, tx);
}

void FcFabric::set_route(std::uint8_t domain, std::size_t port) {
  routes_[domain] = port;
}

void FcFabric::reset_for_campaign() {
  stats_ = Stats{};
  for (auto& p : ports_) p->reset_for_campaign();
}

void FcFabric::forward(FcFrame frame, sim::SimTime when) {
  const auto domain = static_cast<std::uint8_t>(frame.header.d_id >> 16);
  const auto it = routes_.find(domain);
  if (it == routes_.end() || it->second >= ports_.size()) {
    ++stats_.frames_discarded;  // class 3: silently discarded
    if (discard_) discard_(frame, when);
    return;
  }
  ++stats_.frames_forwarded;
  // send() applies the egress link's own BB credit; a full queue there
  // counts as that port's tx_queue_drop.
  ports_[it->second]->send(std::move(frame));
}

}  // namespace hsfi::fc
