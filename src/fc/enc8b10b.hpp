// IBM 8b/10b transmission code (Widmer & Franaszek), as used by Fibre
// Channel FC-1 (ANSI X3.230-1994 [ANS94] in the paper's references).
//
// The encoder maps an 8-bit byte (plus the data/special K flag) to a 10-bit
// code group under running disparity (RD); the decoder inverts the mapping
// and reports invalid code groups and disparity violations — the error
// surface a wire-level bit flip exposes on a real FC link.
//
// Code groups are stored as integers with transmission order 'abcdei fghj'
// from MSB to LSB (bit 9 = a, bit 0 = j).
#pragma once

#include <cstdint>
#include <optional>

namespace hsfi::fc {

/// Running disparity: strictly -1 or +1 between code groups.
enum class Disparity : std::int8_t { kMinus = -1, kPlus = +1 };

[[nodiscard]] constexpr Disparity flip(Disparity d) noexcept {
  return d == Disparity::kMinus ? Disparity::kPlus : Disparity::kMinus;
}

/// A character to encode: 8-bit value plus the K (special) flag.
struct Char8 {
  std::uint8_t value = 0;
  bool is_k = false;

  friend constexpr bool operator==(const Char8&, const Char8&) = default;
};

/// Standard spelling helpers: D<x>.<y> and K<x>.<y>.
[[nodiscard]] constexpr Char8 D(std::uint8_t x, std::uint8_t y) noexcept {
  return Char8{static_cast<std::uint8_t>((y << 5) | (x & 0x1F)), false};
}
[[nodiscard]] constexpr Char8 K(std::uint8_t x, std::uint8_t y) noexcept {
  return Char8{static_cast<std::uint8_t>((y << 5) | (x & 0x1F)), true};
}

struct EncodeResult {
  std::uint16_t code = 0;  ///< 10-bit group
  Disparity rd = Disparity::kMinus;  ///< disparity after this group
};

/// Encodes one character. Invalid K characters (outside K28.0-7, K23.7,
/// K27.7, K29.7, K30.7) return nullopt.
[[nodiscard]] std::optional<EncodeResult> encode_8b10b(Char8 c, Disparity rd);

struct DecodeResult {
  Char8 character{};
  Disparity rd = Disparity::kMinus;  ///< disparity after this group
  bool code_violation = false;       ///< not a valid 10-bit group at all
  bool disparity_error = false;      ///< valid group, wrong running disparity
};

/// Decodes one 10-bit group under the current running disparity.
[[nodiscard]] DecodeResult decode_8b10b(std::uint16_t code, Disparity rd);

}  // namespace hsfi::fc
