#include "fc/frame.hpp"

#include <algorithm>

#include "fc/crc32.hpp"

namespace hsfi::fc {

namespace {

struct OsEntry {
  OrderedSet os;
  std::array<Char8, 4> chars;
};

// Representative FC-PH ordered-set spellings (second character selects the
// class/negative-disparity variant; the exact D-codes beyond K28.5 vary by
// edition — what matters to the model is that they are distinct, K-led, and
// four characters long).
const std::array<OsEntry, 6>& os_table() {
  static const std::array<OsEntry, 6> table = {{
      {OrderedSet::kIdle, {K(28, 5), D(21, 4), D(21, 5), D(21, 5)}},
      {OrderedSet::kRRdy, {K(28, 5), D(21, 4), D(10, 2), D(10, 2)}},
      {OrderedSet::kSofI3, {K(28, 5), D(21, 5), D(22, 2), D(22, 2)}},
      {OrderedSet::kSofN3, {K(28, 5), D(21, 5), D(22, 1), D(22, 1)}},
      {OrderedSet::kEofN, {K(28, 5), D(21, 4), D(21, 6), D(21, 6)}},
      {OrderedSet::kEofT, {K(28, 5), D(21, 4), D(21, 3), D(21, 3)}},
  }};
  return table;
}

}  // namespace

std::array<Char8, 4> ordered_set_chars(OrderedSet os) noexcept {
  for (const auto& e : os_table()) {
    if (e.os == os) return e.chars;
  }
  return os_table()[0].chars;
}

std::optional<OrderedSet> parse_ordered_set(
    std::span<const Char8, 4> chars) noexcept {
  for (const auto& e : os_table()) {
    if (std::equal(e.chars.begin(), e.chars.end(), chars.begin())) {
      return e.os;
    }
  }
  return std::nullopt;
}

std::vector<link::Symbol> ordered_set_symbols(OrderedSet os) {
  const auto arr = ordered_set_symbol_array(os);
  return std::vector<link::Symbol>(arr.begin(), arr.end());
}

std::array<link::Symbol, 4> ordered_set_symbol_array(OrderedSet os) noexcept {
  const auto chars = ordered_set_chars(os);
  std::array<link::Symbol, 4> out{};
  for (std::size_t i = 0; i < 4; ++i) {
    out[i] = link::Symbol{chars[i].value, chars[i].is_k};
  }
  return out;
}

std::vector<std::uint8_t> encode_header(const FcHeader& h) {
  std::vector<std::uint8_t> out;
  out.reserve(kFcHeaderSize);
  const auto put24 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
  };
  const auto put16 = [&out](std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
  };
  out.push_back(h.r_ctl);
  put24(h.d_id);
  out.push_back(h.cs_ctl);
  put24(h.s_id);
  out.push_back(h.type);
  put24(h.f_ctl);
  out.push_back(h.seq_id);
  out.push_back(h.df_ctl);
  put16(h.seq_cnt);
  put16(h.ox_id);
  put16(h.rx_id);
  out.push_back(static_cast<std::uint8_t>(h.parameter >> 24));
  out.push_back(static_cast<std::uint8_t>(h.parameter >> 16));
  out.push_back(static_cast<std::uint8_t>(h.parameter >> 8));
  out.push_back(static_cast<std::uint8_t>(h.parameter));
  return out;
}

std::optional<FcHeader> parse_header(std::span<const std::uint8_t> b) {
  if (b.size() < kFcHeaderSize) return std::nullopt;
  const auto get24 = [&b](std::size_t i) {
    return static_cast<std::uint32_t>((b[i] << 16) | (b[i + 1] << 8) |
                                      b[i + 2]);
  };
  FcHeader h;
  h.r_ctl = b[0];
  h.d_id = get24(1);
  h.cs_ctl = b[4];
  h.s_id = get24(5);
  h.type = b[8];
  h.f_ctl = get24(9);
  h.seq_id = b[12];
  h.df_ctl = b[13];
  h.seq_cnt = static_cast<std::uint16_t>((b[14] << 8) | b[15]);
  h.ox_id = static_cast<std::uint16_t>((b[16] << 8) | b[17]);
  h.rx_id = static_cast<std::uint16_t>((b[18] << 8) | b[19]);
  h.parameter = static_cast<std::uint32_t>((b[20] << 24) | (b[21] << 16) |
                                           (b[22] << 8) | b[23]);
  return h;
}

std::vector<link::Symbol> frame_to_symbols(const FcFrame& frame) {
  std::vector<link::Symbol> out;
  frame_to_symbols_into(frame, out);
  return out;
}

void frame_to_symbols_into(const FcFrame& frame,
                           std::vector<link::Symbol>& out) {
  std::vector<std::uint8_t> body = encode_header(frame.header);
  body.insert(body.end(), frame.payload.begin(), frame.payload.end());
  const std::uint32_t crc = crc32(body);
  body.push_back(static_cast<std::uint8_t>(crc >> 24));
  body.push_back(static_cast<std::uint8_t>(crc >> 16));
  body.push_back(static_cast<std::uint8_t>(crc >> 8));
  body.push_back(static_cast<std::uint8_t>(crc));

  out.clear();
  out.reserve(4 + body.size() + 4);
  const auto sof = ordered_set_symbol_array(frame.sof);
  out.insert(out.end(), sof.begin(), sof.end());
  for (const auto b : body) out.push_back(link::data_symbol(b));
  const auto eof = ordered_set_symbol_array(frame.eof);
  out.insert(out.end(), eof.begin(), eof.end());
}

FcParsed parse_frame_body(std::span<const std::uint8_t> bytes) {
  FcParsed out;
  if (bytes.size() < kFcHeaderSize + 4) {
    out.status = FcParseStatus::kTooShort;
    return out;
  }
  const auto body = bytes.first(bytes.size() - 4);
  const std::uint32_t wire_crc = static_cast<std::uint32_t>(
      (bytes[bytes.size() - 4] << 24) | (bytes[bytes.size() - 3] << 16) |
      (bytes[bytes.size() - 2] << 8) | bytes[bytes.size() - 1]);
  if (crc32(body) != wire_crc) {
    out.status = FcParseStatus::kCrcError;
    return out;
  }
  const auto header = parse_header(body);
  if (!header) {
    out.status = FcParseStatus::kTooShort;
    return out;
  }
  out.frame.header = *header;
  out.frame.payload.assign(body.begin() + kFcHeaderSize, body.end());
  out.status = FcParseStatus::kOk;
  return out;
}

}  // namespace hsfi::fc
