// FC-2 sequences: payloads larger than one frame travel as an ordered run
// of frames sharing SEQ_ID, numbered by SEQ_CNT, delimited SOFi3...EOFn /
// SOFn3...EOFn / ... / SOFn3...EOFt.
//
// SequenceBuilder splits a payload into frames; SequenceReassembler
// collects arriving frames per (S_ID, SEQ_ID), enforces in-order SEQ_CNT,
// and delivers the whole payload at the terminating EOFt. A gap in the
// count or a new sequence arriving over an unfinished one aborts the old
// one — class 3 has no retransmission, so a lost middle frame costs the
// sequence, which is exactly the failure surface an injector campaign on
// an FC link measures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "fc/frame.hpp"

namespace hsfi::fc {

class SequenceBuilder {
 public:
  /// Splits `payload` into frames of at most `chunk` payload bytes (the
  /// header fields other than SEQ_CNT/delimiters are copied from `header`).
  [[nodiscard]] static std::vector<FcFrame> build(const FcHeader& header,
                                                  std::vector<std::uint8_t> payload,
                                                  std::size_t chunk = kFcMaxPayload);
};

class SequenceReassembler {
 public:
  struct Stats {
    std::uint64_t sequences_completed = 0;
    std::uint64_t sequences_aborted = 0;  ///< count gap or preemption
    std::uint64_t frames_accepted = 0;
    std::uint64_t frames_rejected = 0;    ///< out-of-order SEQ_CNT
  };

  /// Called with the originator id, sequence id, and complete payload.
  using Handler = std::function<void(std::uint32_t s_id, std::uint8_t seq_id,
                                     std::vector<std::uint8_t> payload)>;

  explicit SequenceReassembler(Handler handler) : handler_(std::move(handler)) {}

  /// Feed a received frame (CRC-valid; the port already checked).
  void feed(const FcFrame& frame);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t open_sequences() const noexcept {
    return open_.size();
  }

 private:
  struct Open {
    std::uint16_t next_cnt = 0;
    std::vector<std::uint8_t> payload;
  };

  using Key = std::pair<std::uint32_t, std::uint8_t>;  // s_id, seq_id
  std::map<Key, Open> open_;
  Handler handler_;
  Stats stats_;
};

}  // namespace hsfi::fc
