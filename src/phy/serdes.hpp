// PHY transceiver models.
//
// "The injector can function on standard interfaces because commercially
// available physical interface chips (PHYs) are used as transceivers...
// COTS transceivers enable internal operation on standard CMOS levels
// regardless of voltage levels used on the network level" (paper §3.2).
//
// MyriPhy: Myrinet characters travel as 9-bit NRZ groups; the PHY is an
// (de)serializer with a fixed latency — behavior-neutral, so it is modeled
// as a latency constant folded into the injector device.
//
// FcSerdes: the Fibre Channel PHY 8b/10b-encodes the decoded-character
// domain onto the wire. Encoding/decoding here is exact, so wire-level bit
// faults manifest as code violations and disparity errors — the FC-side
// error surface a fault-injection campaign observes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fc/enc8b10b.hpp"
#include "link/symbol.hpp"
#include "sim/time.hpp"

namespace hsfi::phy {

/// Fixed pass-through latency of the Myrinet PHY pair ("the Myricom FI3
/// chips (which is unknown)" — a few character times).
inline constexpr sim::Duration kMyriPhyLatency = sim::nanoseconds(25);

/// A serialized Fibre Channel wire segment: 10-bit groups plus the
/// disparity the stream started from.
struct FcWireStream {
  fc::Disparity initial_rd = fc::Disparity::kMinus;
  std::vector<std::uint16_t> groups;
};

struct FcDecodedStream {
  std::vector<link::Symbol> symbols;
  std::uint64_t code_violations = 0;
  std::uint64_t disparity_errors = 0;
};

class FcSerdes {
 public:
  /// Serializes decoded characters (control flag = K flag) to the wire.
  [[nodiscard]] static FcWireStream encode(
      std::span<const link::Symbol> symbols,
      fc::Disparity start = fc::Disparity::kMinus);

  /// Deserializes a wire stream; corrupted groups are dropped from the
  /// symbol output and counted.
  [[nodiscard]] static FcDecodedStream decode(const FcWireStream& wire);

  /// Reusable-buffer variant: clears `out` and serializes into it, keeping
  /// its group storage across calls. Burst-rate encode paths call this with
  /// a scratch stream instead of allocating per burst.
  static void encode_into(std::span<const link::Symbol> symbols,
                          FcWireStream& out,
                          fc::Disparity start = fc::Disparity::kMinus);

  /// Reusable-buffer variant of decode: clears `out` (symbols and error
  /// counters) and deserializes into it.
  static void decode_into(const FcWireStream& wire, FcDecodedStream& out);
};

/// Flips bit `bit` (0..9) of group `index` on the wire — a single-bit
/// transmission fault below the character layer.
void flip_wire_bit(FcWireStream& wire, std::size_t index, unsigned bit);

}  // namespace hsfi::phy
