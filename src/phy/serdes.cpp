#include "phy/serdes.hpp"

namespace hsfi::phy {

FcWireStream FcSerdes::encode(std::span<const link::Symbol> symbols,
                              fc::Disparity start) {
  FcWireStream wire;
  encode_into(symbols, wire, start);
  return wire;
}

void FcSerdes::encode_into(std::span<const link::Symbol> symbols,
                           FcWireStream& out, fc::Disparity start) {
  out.initial_rd = start;
  out.groups.clear();
  out.groups.reserve(symbols.size());
  fc::Disparity rd = start;
  for (const auto s : symbols) {
    const auto enc = fc::encode_8b10b(fc::Char8{s.data, s.control}, rd);
    if (!enc) continue;  // unencodable K character: dropped by the PHY
    out.groups.push_back(enc->code);
    rd = enc->rd;
  }
}

FcDecodedStream FcSerdes::decode(const FcWireStream& wire) {
  FcDecodedStream out;
  decode_into(wire, out);
  return out;
}

void FcSerdes::decode_into(const FcWireStream& wire, FcDecodedStream& out) {
  out.symbols.clear();
  out.code_violations = 0;
  out.disparity_errors = 0;
  out.symbols.reserve(wire.groups.size());
  fc::Disparity rd = wire.initial_rd;
  for (const auto g : wire.groups) {
    const auto dec = fc::decode_8b10b(g, rd);
    rd = dec.rd;
    if (dec.code_violation) {
      ++out.code_violations;
      continue;
    }
    if (dec.disparity_error) ++out.disparity_errors;
    out.symbols.push_back(
        link::Symbol{dec.character.value, dec.character.is_k});
  }
}

void flip_wire_bit(FcWireStream& wire, std::size_t index, unsigned bit) {
  if (index >= wire.groups.size() || bit > 9) return;
  wire.groups[index] ^= static_cast<std::uint16_t>(1u << bit);
}

}  // namespace hsfi::phy
