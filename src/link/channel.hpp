// Point-to-point symbol channels.
//
// A Channel is one direction of a physical cable: it serializes symbols at
// the channel's character period and delivers them, after the propagation
// delay, as a Burst to the attached sink. Bursts (rather than one event per
// character) keep long campaigns tractable; the Myrinet slack buffer exists
// precisely to absorb the in-flight data this granularity implies (see
// DESIGN.md section 4.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "link/symbol.hpp"
#include "link/symbol_pool.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hsfi::link {

/// A group of consecutive symbols on the wire. symbols[i] finishes arriving
/// at `start + (i + 1) * period`.
///
/// Lifetime: a Burst delivered to SymbolSink::on_burst — including its
/// `symbols` storage and the SoA view — is owned by the channel and valid
/// only until on_burst returns; the buffers are then recycled for later
/// bursts. Sinks that need the data longer must copy it. Under
/// AddressSanitizer the recycled `symbols` storage is poisoned, so use past
/// the lifetime faults in CI.
///
/// Structure-of-arrays view: channels deliver bursts with `data` (the data
/// byte of every symbol, contiguous) and `ctl` (a bitmask, bit (i % 64) of
/// ctl[i / 64] set when symbols[i] is a control character) filled, so batch
/// consumers can scan control positions word-at-a-time and bulk-copy data
/// runs without re-touching Symbol structs. Hand-built bursts (tests, ad
/// hoc producers) may omit the view — sinks check has_view() and fall back
/// to the AoS `symbols` path, which stays authoritative either way.
struct Burst {
  sim::SimTime start = 0;      ///< arrival time of the first symbol's leading edge
  sim::Duration period = 0;    ///< character period
  std::vector<Symbol> symbols;
  std::vector<std::uint8_t> data;   ///< SoA: data[i] == symbols[i].data
  std::vector<std::uint64_t> ctl;   ///< SoA: control-flag bitmask words

  [[nodiscard]] sim::SimTime end() const noexcept {
    return start + period * static_cast<sim::Duration>(symbols.size());
  }
  /// Arrival (completion) time of symbols[i].
  [[nodiscard]] sim::SimTime arrival(std::size_t i) const noexcept {
    return start + period * static_cast<sim::Duration>(i + 1);
  }

  [[nodiscard]] bool has_view() const noexcept {
    return data.size() == symbols.size() &&
           ctl.size() == (symbols.size() + 63) / 64;
  }
  /// (Re)derives the SoA view from `symbols` — for hand-built bursts.
  void build_view();
};

/// Index of the first control symbol at or after `from`, or symbols.size()
/// when the rest of the burst is all data. Precondition: burst.has_view().
[[nodiscard]] std::size_t find_next_control(const Burst& burst,
                                            std::size_t from) noexcept;

/// Receiver interface for one channel direction.
class SymbolSink {
 public:
  virtual ~SymbolSink() = default;
  virtual void on_burst(const Burst& burst) = 0;
};

/// One direction of a cable.
class Channel {
 public:
  /// `character_period` is the serialization time of one 9-bit character
  /// (12.5 ns at 80 MB/s); `propagation_delay` models cable length
  /// (~5 ns/m of copper).
  Channel(sim::Simulator& simulator, std::string name,
          sim::Duration character_period, sim::Duration propagation_delay);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void attach(SymbolSink& sink) noexcept { sink_ = &sink; }

  /// Queues `symbols` for serialization. Transmission begins when the
  /// transmitter is free (consecutive sends are serialized back to back).
  /// Returns the time at which the last symbol finishes transmitting.
  sim::SimTime transmit(std::span<const Symbol> symbols);
  sim::SimTime transmit(Symbol symbol) { return transmit({&symbol, 1}); }

  /// Earliest time a new transmission could start.
  [[nodiscard]] sim::SimTime transmitter_free_at() const noexcept {
    return tx_free_at_;
  }

  [[nodiscard]] sim::Duration character_period() const noexcept {
    return character_period_;
  }
  [[nodiscard]] sim::Duration propagation_delay() const noexcept {
    return propagation_delay_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Total symbols ever accepted for transmission.
  [[nodiscard]] std::uint64_t symbols_sent() const noexcept {
    return symbols_sent_;
  }

  /// Simulates pulling the cable: while disconnected, transmitted symbols
  /// vanish (and are counted). Reconnecting restores normal delivery.
  void set_connected(bool connected) noexcept { connected_ = connected; }
  [[nodiscard]] bool connected() const noexcept { return connected_; }
  [[nodiscard]] std::uint64_t symbols_lost_disconnected() const noexcept {
    return symbols_lost_;
  }

  /// The burst-buffer freelist (observable for pooling tests/metrics).
  [[nodiscard]] const SymbolBufferPool& burst_pool() const noexcept {
    return pool_;
  }

  /// Mutable channel state for fabric snapshots. In-flight bursts live in
  /// the simulator queue (delivery lambdas own their symbol vectors by
  /// value), so the channel itself only carries the transmitter horizon and
  /// counters. The buffer pool is deliberately excluded: it only affects
  /// allocation reuse, never delivery order or timing.
  struct State {
    sim::SimTime tx_free_at = 0;
    std::uint64_t symbols_sent = 0;
    std::uint64_t symbols_lost = 0;
    bool connected = true;
  };

  [[nodiscard]] State capture_state() const noexcept {
    return State{tx_free_at_, symbols_sent_, symbols_lost_, connected_};
  }
  void restore_state(const State& state) noexcept {
    tx_free_at_ = state.tx_free_at;
    symbols_sent_ = state.symbols_sent;
    symbols_lost_ = state.symbols_lost;
    connected_ = state.connected;
  }

 private:
  /// Fire-time half of transmit(): assembles the Burst (SoA view from the
  /// channel scratch), invokes the sink, and recycles the buffers.
  void deliver(SymbolSink* sink, sim::SimTime start,
               std::vector<Symbol>&& symbols);

  sim::Simulator& simulator_;
  std::string name_;
  sim::Duration character_period_;
  sim::Duration propagation_delay_;
  sim::SimTime tx_free_at_ = 0;
  std::uint64_t symbols_sent_ = 0;
  std::uint64_t symbols_lost_ = 0;
  bool connected_ = true;
  SymbolSink* sink_ = nullptr;
  SymbolBufferPool pool_;
  std::vector<std::uint8_t> view_data_;   ///< SoA scratch, reused per delivery
  std::vector<std::uint64_t> view_ctl_;   ///< SoA scratch, reused per delivery
};

/// A full-duplex cable: two channels with shared parameters. End A transmits
/// on a_to_b and receives from b_to_a; end B the reverse.
class DuplexLink {
 public:
  DuplexLink(sim::Simulator& simulator, std::string name,
             sim::Duration character_period, sim::Duration propagation_delay)
      : a_to_b_(simulator, name + ".a>b", character_period, propagation_delay),
        b_to_a_(simulator, name + ".b>a", character_period, propagation_delay) {}

  [[nodiscard]] Channel& a_to_b() noexcept { return a_to_b_; }
  [[nodiscard]] Channel& b_to_a() noexcept { return b_to_a_; }
  [[nodiscard]] const Channel& a_to_b() const noexcept { return a_to_b_; }
  [[nodiscard]] const Channel& b_to_a() const noexcept { return b_to_a_; }

 private:
  Channel a_to_b_;
  Channel b_to_a_;
};

}  // namespace hsfi::link
