#include "link/channel.hpp"

#include <bit>
#include <utility>

namespace hsfi::link {

void Burst::build_view() {
  const std::size_t n = symbols.size();
  data.resize(n);
  ctl.assign((n + 63) / 64, 0);
  const Symbol* s = symbols.data();
  std::uint8_t* d = data.data();
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = s[i].data;
    ctl[i >> 6] |= static_cast<std::uint64_t>(s[i].control) << (i & 63);
  }
}

std::size_t find_next_control(const Burst& burst, std::size_t from) noexcept {
  const std::size_t n = burst.symbols.size();
  if (from >= n) return n;
  std::size_t w = from >> 6;
  // Bits above n - 1 in the last word are never set (build_view zeroes the
  // mask first), so a hit is always a valid index.
  std::uint64_t word = burst.ctl[w] & (~std::uint64_t{0} << (from & 63));
  while (word == 0) {
    if (++w == burst.ctl.size()) return n;
    word = burst.ctl[w];
  }
  return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
}

Channel::Channel(sim::Simulator& simulator, std::string name,
                 sim::Duration character_period,
                 sim::Duration propagation_delay)
    : simulator_(simulator),
      name_(std::move(name)),
      character_period_(character_period),
      propagation_delay_(propagation_delay) {}

sim::SimTime Channel::transmit(std::span<const Symbol> symbols) {
  if (symbols.empty()) return simulator_.now();
  const sim::SimTime start =
      tx_free_at_ > simulator_.now() ? tx_free_at_ : simulator_.now();
  const auto n = static_cast<sim::Duration>(symbols.size());
  tx_free_at_ = start + character_period_ * n;
  symbols_sent_ += symbols.size();

  if (!connected_) {
    symbols_lost_ += symbols.size();
    return tx_free_at_;
  }
  if (sink_ == nullptr) return tx_free_at_;

  std::vector<Symbol> buffer = pool_.acquire();
  buffer.assign(symbols.begin(), symbols.end());

  // Deliver when the *first* symbol's trailing edge arrives; the sink uses
  // Burst::arrival() for per-symbol times within the burst. The closure owns
  // the symbol payload by value (snapshots deep-copy pending actions, so a
  // forked run replays the delivery from its own copy); the SoA view is
  // derived at fire time in deliver() from channel-owned scratch, keeping
  // the capture small enough for the Action's inline buffer. The symbol
  // buffer goes back on the freelist as soon as on_burst returns (see the
  // Burst lifetime contract in channel.hpp).
  SymbolSink* sink = sink_;
  const sim::SimTime arrive = start + propagation_delay_;
  simulator_.schedule_at(arrive + character_period_,
                         [this, sink, arrive, buf = std::move(buffer)]() mutable {
                           deliver(sink, arrive, std::move(buf));
                         });
  return tx_free_at_;
}

void Channel::deliver(SymbolSink* sink, sim::SimTime start,
                      std::vector<Symbol>&& symbols) {
  Burst burst;
  burst.start = start;
  burst.period = character_period_;
  burst.symbols = std::move(symbols);
  // Reuse the channel's scratch so steady-state traffic builds the view
  // without allocating. Delivery never nests (on_burst runs from the event
  // loop and only *schedules* follow-on work), so one scratch pair is safe.
  burst.data = std::move(view_data_);
  burst.ctl = std::move(view_ctl_);
  burst.build_view();
  sink->on_burst(burst);
  view_data_ = std::move(burst.data);
  view_ctl_ = std::move(burst.ctl);
  pool_.release(std::move(burst.symbols));
}

}  // namespace hsfi::link
