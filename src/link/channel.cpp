#include "link/channel.hpp"

#include <utility>

namespace hsfi::link {

Channel::Channel(sim::Simulator& simulator, std::string name,
                 sim::Duration character_period,
                 sim::Duration propagation_delay)
    : simulator_(simulator),
      name_(std::move(name)),
      character_period_(character_period),
      propagation_delay_(propagation_delay) {}

sim::SimTime Channel::transmit(std::span<const Symbol> symbols) {
  if (symbols.empty()) return simulator_.now();
  const sim::SimTime start =
      tx_free_at_ > simulator_.now() ? tx_free_at_ : simulator_.now();
  const auto n = static_cast<sim::Duration>(symbols.size());
  tx_free_at_ = start + character_period_ * n;
  symbols_sent_ += symbols.size();

  if (!connected_) {
    symbols_lost_ += symbols.size();
    return tx_free_at_;
  }
  if (sink_ == nullptr) return tx_free_at_;

  Burst burst;
  burst.start = start + propagation_delay_;
  burst.period = character_period_;
  burst.symbols = pool_.acquire();
  burst.symbols.assign(symbols.begin(), symbols.end());

  // Deliver when the *first* symbol's trailing edge arrives; the sink uses
  // Burst::arrival() for per-symbol times within the burst. The symbol
  // buffer goes back on the freelist as soon as on_burst returns (see the
  // Burst lifetime contract in channel.hpp).
  SymbolSink* sink = sink_;
  simulator_.schedule_at(burst.start + character_period_,
                         [this, sink, b = std::move(burst)]() mutable {
                           sink->on_burst(b);
                           pool_.release(std::move(b.symbols));
                         });
  return tx_free_at_;
}

}  // namespace hsfi::link
