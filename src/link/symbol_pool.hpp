// Freelist of symbol buffers for steady-state zero-allocation traffic.
//
// Every Burst a Channel delivers used to allocate (and free) its symbol
// vector; over a campaign that is one malloc per transmit on the hottest
// path in the tree. The pool recycles the vectors instead: release() parks
// a buffer (capacity intact), acquire() hands it back out. Under
// AddressSanitizer the parked buffer's storage is poisoned, so a sink that
// holds on to a Burst span past its documented lifetime (the on_burst call)
// crashes loudly in CI instead of silently reading recycled data.
#pragma once

#include <cstdint>
#include <vector>

#include "link/symbol.hpp"

namespace hsfi::link {

class SymbolBufferPool {
 public:
  /// `max_free` bounds parked buffers; beyond it, release() simply frees.
  explicit SymbolBufferPool(std::size_t max_free = 8) : max_free_(max_free) {}
  ~SymbolBufferPool();

  SymbolBufferPool(const SymbolBufferPool&) = delete;
  SymbolBufferPool& operator=(const SymbolBufferPool&) = delete;

  /// An empty buffer, reusing a parked one's capacity when available.
  [[nodiscard]] std::vector<Symbol> acquire();

  /// Parks `buffer` for reuse (poisoned under ASan until re-acquired).
  void release(std::vector<Symbol>&& buffer);

  [[nodiscard]] std::uint64_t acquires() const noexcept { return acquires_; }
  /// Acquires served from a parked buffer instead of a fresh allocation.
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<std::vector<Symbol>> free_;
  std::size_t max_free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace hsfi::link
