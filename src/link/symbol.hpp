// The 9-bit Myrinet character: 8 data bits plus the Data/Control bit.
//
// The paper (Fig. 7/8): "These control symbols are distinguished from data by
// a Data/Control bit separate from the 8-bit data path. This D/C bit is 1 for
// data, and 0 for control symbols."
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace hsfi::link {

struct Symbol {
  std::uint8_t data = 0;
  bool control = false;  ///< true = control symbol (paper's D/C bit == 0)

  friend constexpr auto operator<=>(const Symbol&, const Symbol&) = default;
};

constexpr Symbol data_symbol(std::uint8_t b) noexcept { return Symbol{b, false}; }
constexpr Symbol control_symbol(std::uint8_t b) noexcept { return Symbol{b, true}; }

/// "D3" for data 0xD3, "c0C" for control 0x0C — used in traces and captures.
std::string to_string(Symbol s);

/// Renders a stream like "D3 41 c0C ..." for captures and stream dumps.
std::string to_string(const std::vector<Symbol>& symbols);

}  // namespace hsfi::link
