#include "link/symbol_pool.hpp"

#include <utility>

#if defined(__SANITIZE_ADDRESS__)
#define HSFI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HSFI_ASAN 1
#endif
#endif

#ifdef HSFI_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace hsfi::link {

namespace {

void poison(const std::vector<Symbol>& buffer) {
#ifdef HSFI_ASAN
  if (buffer.capacity() != 0) {
    __asan_poison_memory_region(buffer.data(),
                                buffer.capacity() * sizeof(Symbol));
  }
#else
  (void)buffer;
#endif
}

void unpoison(const std::vector<Symbol>& buffer) {
#ifdef HSFI_ASAN
  if (buffer.capacity() != 0) {
    __asan_unpoison_memory_region(buffer.data(),
                                  buffer.capacity() * sizeof(Symbol));
  }
#else
  (void)buffer;
#endif
}

}  // namespace

SymbolBufferPool::~SymbolBufferPool() {
  // The vectors' own deallocation must not run against poisoned storage.
  for (const auto& buffer : free_) unpoison(buffer);
}

std::vector<Symbol> SymbolBufferPool::acquire() {
  ++acquires_;
  if (free_.empty()) return {};
  ++reuses_;
  std::vector<Symbol> buffer = std::move(free_.back());
  free_.pop_back();
  unpoison(buffer);
  buffer.clear();
  return buffer;
}

void SymbolBufferPool::release(std::vector<Symbol>&& buffer) {
  if (free_.size() >= max_free_ || buffer.capacity() == 0) return;
  poison(buffer);
  free_.push_back(std::move(buffer));
}

}  // namespace hsfi::link
