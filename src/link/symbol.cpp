#include "link/symbol.hpp"

#include <array>

namespace hsfi::link {

namespace {
constexpr std::array<char, 16> kHex = {'0', '1', '2', '3', '4', '5', '6', '7',
                                       '8', '9', 'A', 'B', 'C', 'D', 'E', 'F'};
}  // namespace

std::string to_string(Symbol s) {
  std::string out;
  if (s.control) out += 'c';
  out += kHex[(s.data >> 4) & 0xF];
  out += kHex[s.data & 0xF];
  return out;
}

std::string to_string(const std::vector<Symbol>& symbols) {
  std::string out;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (i != 0) out += ' ';
    out += to_string(symbols[i]);
  }
  return out;
}

}  // namespace hsfi::link
