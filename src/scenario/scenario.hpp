// Protocol-aware misbehavior scenarios.
//
// The injector mutates symbols on the wire; a Scenario misbehaves at the
// protocol layer while keeping every frame well-formed (the OpenSSL QUIC
// fault-injector model: construct fully valid protocol elements, then
// deviate in one controlled way). A scenario is an ordered program of
// interventions — forged mapping announcements into the MCP, lying STOP/GO
// flow control, truncated-but-CRC-valid frames, R_RDY floods beyond
// BB-credit, duplicated/reordered FC-2 sequences — installed via hooks at
// the Myrinet/FC protocol objects, never by corrupting the symbol stream.
//
// The data model here is deliberately plain: a Step is (kind, offset from
// the measurement-window start, target node, scalar parameter), and a
// ScenarioSpec is a named ordered list of steps. Campaign specs carry an
// optional ScenarioSpec; the per-medium drivers (driver_myrinet.hpp,
// driver_fc.hpp) schedule and execute the steps; the Minimizer
// (minimizer.hpp) delta-debugs a manifesting spec down to a minimal
// reproducer. Each step firing is recorded as an injection so the 8-class
// manifestation breakdown still reconciles exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hsfi::scenario {

/// Which protocol stack a step (or a whole scenario) drives. Kept separate
/// from nftape::Medium so the scenario layer stays below the fabric layer;
/// nftape maps between the two at arm time.
enum class Medium : std::uint8_t {
  kMyrinet = 0,
  kFc,
};

[[nodiscard]] std::string_view to_string(Medium m) noexcept;

/// One protocol-level intervention. Every kind produces only well-formed
/// wire traffic; the lie is in the protocol state it claims.
enum class StepKind : std::uint8_t {
  // Myrinet
  kForgedAnnounce = 0,  ///< announce a damaged map from a phantom high-address
                        ///< MCP; victims install it and route wrong (§4.3.3)
  kStaleAnnounce,       ///< announce a map with a node missing — the paper's
                        ///< "removed from the network" without any corruption
  kLyingGo,             ///< switch sends GO on a port regardless of slack space
  kLyingStop,           ///< switch sends STOP on a port with slack available
  kTruncateFrames,      ///< shorten the next `count` tx payloads, CRC-8
                        ///< repatched so the frame stays valid on the wire
  // Fibre Channel
  kRrdyFlood,           ///< transmit `count` R_RDYs beyond BB-credit, inflating
                        ///< the peer's credit belief past real buffer space
  kDupSequence,         ///< send one complete FC-2 sequence twice (same
                        ///< SEQ_ID/OX_ID), frames individually valid
  kReorderSequence,     ///< send a multi-frame sequence with two frames swapped
};

inline constexpr std::size_t kStepKindCount = 8;

[[nodiscard]] std::string_view to_string(StepKind kind) noexcept;
[[nodiscard]] std::optional<StepKind> parse_step_kind(std::string_view name);
/// Which medium's protocol objects a step kind drives.
[[nodiscard]] Medium medium_of(StepKind kind) noexcept;
/// One-line description (the --list-scenarios / docs text).
[[nodiscard]] std::string_view describe(StepKind kind) noexcept;

struct Step {
  StepKind kind = StepKind::kLyingGo;
  /// Offset from the measurement-window start. Must be > 0 (the analyzer
  /// classifies injections with window_begin < t <= window_end) and should
  /// fall inside the campaign duration so the firing lands in the window.
  sim::Duration at = 0;
  /// Target node index (Myrinet: host/switch-port index; FC: N_Port index).
  std::uint32_t node = 0;
  /// Scalar intensity: frames to truncate, R_RDYs to flood, entries to
  /// damage. The minimizer's parameter-shrinking pass lowers this.
  std::uint64_t count = 1;

  friend bool operator==(const Step&, const Step&) = default;
};

/// An ordered program of interventions. Deterministic: the steps fire at
/// fixed offsets in simulated time, so a (spec, seed) pair replays
/// byte-identically through the campaign stack.
struct ScenarioSpec {
  std::string name;
  std::vector<Step> steps;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// True when every step drives `medium`'s protocol objects.
[[nodiscard]] bool compatible(const ScenarioSpec& spec, Medium medium) noexcept;

/// A registered scenario: a named, described, buildable default program.
struct ScenarioInfo {
  std::string_view name;
  Medium medium;
  std::string_view description;
};

/// The registry, in listing order (--list-scenarios prints this).
[[nodiscard]] const std::vector<ScenarioInfo>& list_scenarios();

/// Builds the registered scenario's default step program; nullopt when the
/// name is unknown. Default offsets fit a >= 5 ms measurement window.
[[nodiscard]] std::optional<ScenarioSpec> find_scenario(std::string_view name);

}  // namespace hsfi::scenario
