#include "scenario/driver_fc.hpp"

#include <utility>

#include "fc/sequence.hpp"

namespace hsfi::scenario {

struct FcScenarioDriver::State {
  sim::Simulator* simulator = nullptr;
  std::vector<FcNodeHooks> nodes;
  FcScenarioDriver::Params params;
  analysis::ManifestationAnalyzer* analyzer = nullptr;
  bool armed = false;
  std::uint64_t fired = 0;

  /// Injected sequences carry a SEQ_ID/OX_ID band the workload floods never
  /// use (floods count up from 0), keyed by firing order so repeated steps
  /// stay distinguishable in the reassembler.
  [[nodiscard]] fc::FcHeader scenario_header(std::size_t src,
                                             std::size_t dst) const {
    fc::FcHeader h;
    h.s_id = nodes[src].port_id;
    h.d_id = nodes[dst].port_id;
    h.seq_id = static_cast<std::uint8_t>(0xE0 | (fired & 0x0F));
    h.ox_id = static_cast<std::uint16_t>(0xEE00 | (fired & 0xFF));
    return h;
  }

  /// Static so scheduled events hold only the shared state block, never the
  /// (destructible) driver.
  static void fire(const std::shared_ptr<State>& st, const Step& step);
};

void FcScenarioDriver::State::fire(const std::shared_ptr<State>& st,
                                   const Step& step) {
  if (!st->armed || st->nodes.empty()) return;
  const auto node = static_cast<std::size_t>(step.node) % st->nodes.size();
  const auto target = (node + 1) % st->nodes.size();
  auto& port = *st->nodes[node].port;
  switch (step.kind) {
    case StepKind::kRrdyFlood:
      port.inject_rrdy(step.count == 0 ? 1 : step.count);
      break;
    case StepKind::kDupSequence: {
      // Same complete sequence twice: frame-for-frame identical, same
      // SEQ_ID/OX_ID. The inverted fill makes the duplicate's delivery
      // visible to the workload's payload check.
      const std::vector<std::uint8_t> payload(
          st->params.payload_size,
          static_cast<std::uint8_t>(~st->params.payload_fill));
      const auto frames = fc::SequenceBuilder::build(
          st->scenario_header(node, target), payload, st->params.frame_chunk);
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& f : frames) port.send(f);
      }
      break;
    }
    case StepKind::kReorderSequence: {
      // Three chunks so there are two continuation frames to swap; the
      // receiver's in-order SEQ_CNT check rejects the early arrival.
      const std::vector<std::uint8_t> payload(st->params.frame_chunk * 3,
                                              st->params.payload_fill);
      auto frames = fc::SequenceBuilder::build(
          st->scenario_header(node, target), payload, st->params.frame_chunk);
      if (frames.size() >= 3) std::swap(frames[1], frames[2]);
      for (const auto& f : frames) port.send(f);
      break;
    }
    default:
      return;  // Myrinet step in an FC scenario: validated away upstream
  }
  ++st->fired;
  if (st->analyzer != nullptr) {
    st->analyzer->record_injection(st->simulator->now());
  }
}

FcScenarioDriver::FcScenarioDriver(sim::Simulator& simulator,
                                   std::vector<FcNodeHooks> nodes,
                                   Params params)
    : state_(std::make_shared<State>()) {
  state_->simulator = &simulator;
  state_->nodes = std::move(nodes);
  state_->params = params;
}

FcScenarioDriver::~FcScenarioDriver() { disarm(); }

void FcScenarioDriver::arm(const ScenarioSpec& spec, std::uint64_t seed,
                           analysis::ManifestationAnalyzer& analyzer) {
  (void)seed;
  disarm();
  state_->armed = true;
  state_->analyzer = &analyzer;
  state_->fired = 0;
  for (const auto& step : spec.steps) {
    if (medium_of(step.kind) != Medium::kFc) continue;
    state_->simulator->schedule_in(
        step.at, [st = state_, step] { State::fire(st, step); });
  }
}

void FcScenarioDriver::disarm() {
  state_->armed = false;
  state_->analyzer = nullptr;
}

std::uint64_t FcScenarioDriver::fired() const noexcept {
  return state_->fired;
}

}  // namespace hsfi::scenario
