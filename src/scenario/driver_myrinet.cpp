#include "scenario/driver_myrinet.hpp"

#include <algorithm>
#include <utility>

#include "myrinet/control.hpp"
#include "myrinet/crc8.hpp"
#include "myrinet/packet.hpp"

namespace hsfi::scenario {

namespace {

/// Phantom mapper address: higher than any real MCP, so every node treats
/// the forged announce as coming from the rightful controller and
/// suppresses its own mapping rounds (the election rule turned weapon).
constexpr myrinet::McpAddress kPhantomMapper = ~myrinet::McpAddress{0};

/// Truncation keeps route + marker + type + a few payload bytes so the
/// shortened frame still parses as a data packet at the destination — the
/// loss shows up at the UDP layer (bad length/checksum), not the wire.
constexpr std::size_t kMinTruncatedBody = 8;

}  // namespace

struct MyrinetScenarioDriver::State {
  sim::Simulator* simulator = nullptr;
  myrinet::Switch* network_switch = nullptr;
  std::vector<MyrinetNodeHooks> nodes;
  analysis::ManifestationAnalyzer* analyzer = nullptr;
  bool armed = false;
  std::uint64_t fired = 0;
  /// Outstanding truncations per node, consumed by the tx mutators.
  std::vector<std::uint64_t> truncate_pending;

  /// Static so scheduled events hold only the shared state block, never the
  /// (destructible) driver.
  static void fire(const std::shared_ptr<State>& st, const Step& step);
};

void MyrinetScenarioDriver::State::fire(const std::shared_ptr<State>& st,
                                        const Step& step) {
  if (!st->armed || st->nodes.empty()) return;
  const auto node = static_cast<std::size_t>(step.node) % st->nodes.size();
  switch (step.kind) {
    case StepKind::kForgedAnnounce:
    case StepKind::kStaleAnnounce: {
      myrinet::NetworkMap map = st->nodes[node].mcp->network_map();
      if (step.kind == StepKind::kForgedAnnounce) {
        // Rotate the physical addresses across the ports: every route the
        // victims derive from this map delivers to the wrong host.
        if (map.size() >= 2) {
          for (std::size_t i = 0; i + 1 < map.size(); ++i) {
            std::swap(map[i].eth, map[i + 1].eth);
          }
        }
      } else {
        // Drop `count` entries: the removed nodes silently vanish from the
        // network ("removed... until the next mapping packet", §4.3.2) —
        // except the phantom's suppression delays that next packet.
        const auto cut = std::min<std::size_t>(
            step.count == 0 ? 1 : step.count, map.size());
        const auto first = map.size() > cut ? node % (map.size() - cut) : 0;
        map.erase(map.begin() + static_cast<std::ptrdiff_t>(first),
                  map.begin() + static_cast<std::ptrdiff_t>(first + cut));
      }
      myrinet::Delivered announce;
      announce.status = myrinet::DeliveryStatus::kOk;
      announce.type = myrinet::kTypeMapping;
      announce.payload = myrinet::make_announce_payload(kPhantomMapper, map);
      const auto when = st->simulator->now();
      for (const auto& hooks : st->nodes) {
        hooks.mcp->on_mapping_frame(announce, when);
      }
      break;
    }
    case StepKind::kLyingGo:
      st->network_switch->inject_flow(node, myrinet::ControlSymbol::kGo);
      break;
    case StepKind::kLyingStop:
      st->network_switch->inject_flow(node, myrinet::ControlSymbol::kStop);
      break;
    case StepKind::kTruncateFrames:
      st->truncate_pending[node] += step.count == 0 ? 1 : step.count;
      break;
    default:
      return;  // FC step in a Myrinet scenario: validated away upstream
  }
  ++st->fired;
  if (st->analyzer != nullptr) {
    st->analyzer->record_injection(st->simulator->now());
  }
}

MyrinetScenarioDriver::MyrinetScenarioDriver(
    sim::Simulator& simulator, myrinet::Switch& network_switch,
    std::vector<MyrinetNodeHooks> nodes)
    : state_(std::make_shared<State>()) {
  state_->simulator = &simulator;
  state_->network_switch = &network_switch;
  state_->nodes = std::move(nodes);
  state_->truncate_pending.assign(state_->nodes.size(), 0);
}

MyrinetScenarioDriver::~MyrinetScenarioDriver() { disarm(); }

void MyrinetScenarioDriver::arm(const ScenarioSpec& spec, std::uint64_t seed,
                                analysis::ManifestationAnalyzer& analyzer) {
  (void)seed;
  disarm();
  state_->armed = true;
  state_->analyzer = &analyzer;
  state_->fired = 0;
  std::fill(state_->truncate_pending.begin(), state_->truncate_pending.end(),
            std::uint64_t{0});

  // Tx mutators go in at arm time — even for a step-free scenario the hook
  // indirection is installed, which is exactly what the scenario_overhead
  // bench A/Bs against a bare run.
  for (std::size_t i = 0; i < state_->nodes.size(); ++i) {
    state_->nodes[i].nic->set_tx_mutator(
        [st = state_, i](std::vector<std::uint8_t> bytes) {
          if (!st->armed || st->truncate_pending[i] == 0 ||
              bytes.size() <= kMinTruncatedBody + 1) {
            return bytes;
          }
          --st->truncate_pending[i];
          bytes.pop_back();  // trailing CRC-8
          const std::size_t cut =
              std::min(bytes.size() - kMinTruncatedBody, bytes.size() / 2);
          bytes.resize(bytes.size() - cut);
          bytes.push_back(myrinet::crc8(bytes));  // repatch: valid again
          return bytes;
        });
  }

  for (const auto& step : spec.steps) {
    if (medium_of(step.kind) != Medium::kMyrinet) continue;
    state_->simulator->schedule_in(
        step.at, [st = state_, step] { State::fire(st, step); });
  }
}

void MyrinetScenarioDriver::disarm() {
  if (!state_->armed) return;
  state_->armed = false;
  state_->analyzer = nullptr;
  for (auto& hooks : state_->nodes) hooks.nic->set_tx_mutator(nullptr);
}

std::uint64_t MyrinetScenarioDriver::fired() const noexcept {
  return state_->fired;
}

}  // namespace hsfi::scenario
