#include "scenario/scenario.hpp"

namespace hsfi::scenario {

std::string_view to_string(Medium m) noexcept {
  switch (m) {
    case Medium::kMyrinet: return "myrinet";
    case Medium::kFc: return "fc";
  }
  return "?";
}

std::string_view to_string(StepKind kind) noexcept {
  switch (kind) {
    case StepKind::kForgedAnnounce: return "forged-announce";
    case StepKind::kStaleAnnounce: return "stale-announce";
    case StepKind::kLyingGo: return "lying-go";
    case StepKind::kLyingStop: return "lying-stop";
    case StepKind::kTruncateFrames: return "truncate-frames";
    case StepKind::kRrdyFlood: return "rrdy-flood";
    case StepKind::kDupSequence: return "dup-sequence";
    case StepKind::kReorderSequence: return "reorder-sequence";
  }
  return "?";
}

std::optional<StepKind> parse_step_kind(std::string_view name) {
  if (name == "forged-announce") return StepKind::kForgedAnnounce;
  if (name == "stale-announce") return StepKind::kStaleAnnounce;
  if (name == "lying-go") return StepKind::kLyingGo;
  if (name == "lying-stop") return StepKind::kLyingStop;
  if (name == "truncate-frames") return StepKind::kTruncateFrames;
  if (name == "rrdy-flood") return StepKind::kRrdyFlood;
  if (name == "dup-sequence") return StepKind::kDupSequence;
  if (name == "reorder-sequence") return StepKind::kReorderSequence;
  return std::nullopt;
}

Medium medium_of(StepKind kind) noexcept {
  switch (kind) {
    case StepKind::kForgedAnnounce:
    case StepKind::kStaleAnnounce:
    case StepKind::kLyingGo:
    case StepKind::kLyingStop:
    case StepKind::kTruncateFrames:
      return Medium::kMyrinet;
    case StepKind::kRrdyFlood:
    case StepKind::kDupSequence:
    case StepKind::kReorderSequence:
      return Medium::kFc;
  }
  return Medium::kMyrinet;
}

std::string_view describe(StepKind kind) noexcept {
  switch (kind) {
    case StepKind::kForgedAnnounce:
      return "announce a damaged network map from a phantom high-address MCP";
    case StepKind::kStaleAnnounce:
      return "announce a map with `count` nodes missing (silent removal)";
    case StepKind::kLyingGo:
      return "send GO on switch port `node` regardless of slack space";
    case StepKind::kLyingStop:
      return "send STOP on switch port `node` with slack available";
    case StepKind::kTruncateFrames:
      return "shorten next `count` tx payloads on `node`, CRC-8 repatched";
    case StepKind::kRrdyFlood:
      return "transmit `count` R_RDYs beyond BB-credit from N_Port `node`";
    case StepKind::kDupSequence:
      return "send one complete FC-2 sequence twice (same SEQ_ID/OX_ID)";
    case StepKind::kReorderSequence:
      return "send a multi-frame FC-2 sequence with two frames swapped";
  }
  return "?";
}

bool compatible(const ScenarioSpec& spec, Medium medium) noexcept {
  for (const auto& step : spec.steps) {
    if (medium_of(step.kind) != medium) return false;
  }
  return true;
}

const std::vector<ScenarioInfo>& list_scenarios() {
  static const std::vector<ScenarioInfo> kRegistry = {
      {"flow-liar", Medium::kMyrinet,
       "repeated lying GO on the injected port: slack overruns under load"},
      {"mapping-liar", Medium::kMyrinet,
       "forged and stale announcements poison every node's network map"},
      {"truncator", Medium::kMyrinet,
       "truncated-but-CRC-valid frames: payload shortened, CRC-8 repatched"},
      {"rrdy-storm", Medium::kFc,
       "R_RDY floods beyond BB-credit overrun the peer's receive buffers"},
      {"seq-shuffler", Medium::kFc,
       "duplicated and reordered FC-2 sequences through valid frames"},
  };
  return kRegistry;
}

std::optional<ScenarioSpec> find_scenario(std::string_view name) {
  ScenarioSpec spec;
  spec.name = std::string(name);
  if (name == "flow-liar") {
    // Eight lies spread over [1 ms, 4.5 ms): enough pressure that at least
    // one GO lands while the switch holds the sender stopped.
    for (std::int64_t i = 0; i < 8; ++i) {
      spec.steps.push_back({StepKind::kLyingGo,
                            sim::microseconds(1000 + 500 * i), 0, 1});
    }
    return spec;
  }
  if (name == "mapping-liar") {
    spec.steps.push_back(
        {StepKind::kForgedAnnounce, sim::microseconds(1000), 0, 1});
    spec.steps.push_back(
        {StepKind::kForgedAnnounce, sim::microseconds(2200), 1, 1});
    spec.steps.push_back(
        {StepKind::kStaleAnnounce, sim::microseconds(3400), 0, 1});
    return spec;
  }
  if (name == "truncator") {
    for (std::int64_t i = 0; i < 3; ++i) {
      spec.steps.push_back({StepKind::kTruncateFrames,
                            sim::microseconds(1000 * (i + 1)), 0, 4});
    }
    return spec;
  }
  if (name == "rrdy-storm") {
    for (std::int64_t i = 0; i < 4; ++i) {
      spec.steps.push_back({StepKind::kRrdyFlood,
                            sim::microseconds(1000 * (i + 1)), 0, 16});
    }
    return spec;
  }
  if (name == "seq-shuffler") {
    spec.steps.push_back(
        {StepKind::kDupSequence, sim::microseconds(1000), 0, 1});
    spec.steps.push_back(
        {StepKind::kReorderSequence, sim::microseconds(2000), 1, 1});
    spec.steps.push_back(
        {StepKind::kDupSequence, sim::microseconds(3000), 1, 1});
    spec.steps.push_back(
        {StepKind::kReorderSequence, sim::microseconds(4000), 0, 1});
    return spec;
  }
  return std::nullopt;
}

}  // namespace hsfi::scenario
