// Executes scenario steps against the Myrinet protocol objects.
//
// Hook points (all protocol-layer, none touch the symbol stream):
//   kForgedAnnounce / kStaleAnnounce -> Mcp::on_mapping_frame with a
//     well-formed kTypeMapping announce built by make_announce_payload,
//     claiming a phantom MCP address higher than any real node's;
//   kLyingGo / kLyingStop            -> Switch::inject_flow, emitting a
//     flow-control symbol that contradicts the slack buffer's true state;
//   kTruncateFrames                  -> HostInterface tx mutator: the next
//     `count` queued packets lose tail payload bytes and get their trailing
//     CRC-8 recomputed, so the shortened frame is valid on the wire.
//
// The driver schedules one simulator event per step at window_begin +
// step.at. Arm/disarm bracket one campaign window; events that outlive a
// disarm (steps authored past the window) hold only the shared state block
// and become no-ops, so a destroyed driver never dangles.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/analyzer.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/mcp.hpp"
#include "myrinet/switch.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace hsfi::scenario {

/// Per-node protocol hooks (node i sits on switch port i).
struct MyrinetNodeHooks {
  myrinet::HostInterface* nic = nullptr;
  myrinet::Mcp* mcp = nullptr;
};

class MyrinetScenarioDriver {
 public:
  MyrinetScenarioDriver(sim::Simulator& simulator, myrinet::Switch& network_switch,
                        std::vector<MyrinetNodeHooks> nodes);
  ~MyrinetScenarioDriver();

  MyrinetScenarioDriver(const MyrinetScenarioDriver&) = delete;
  MyrinetScenarioDriver& operator=(const MyrinetScenarioDriver&) = delete;

  /// Installs the tx-mutator hooks and schedules every Myrinet step of
  /// `spec` at now + step.at. Each firing bumps fired() and calls
  /// analyzer.record_injection, so the manifestation breakdown reconciles
  /// against the campaign's injection count. `seed` reserves determinism
  /// headroom for randomized step parameters; current kinds are fully
  /// deterministic and ignore it.
  void arm(const ScenarioSpec& spec, std::uint64_t seed,
           analysis::ManifestationAnalyzer& analyzer);

  /// Uninstalls the hooks and neutralizes not-yet-fired events. Idempotent.
  void disarm();

  [[nodiscard]] std::uint64_t fired() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace hsfi::scenario
