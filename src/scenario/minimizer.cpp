#include "scenario/minimizer.hpp"

#include <algorithm>
#include <vector>

namespace hsfi::scenario {

namespace {

/// Candidate spec holding the steps of `full` selected by `keep`, in order.
ScenarioSpec subset(const ScenarioSpec& full, const std::vector<std::size_t>& keep) {
  ScenarioSpec out;
  out.name = full.name;
  out.steps.reserve(keep.size());
  for (const auto i : keep) out.steps.push_back(full.steps[i]);
  return out;
}

}  // namespace

Minimizer::Result Minimizer::minimize(const ScenarioSpec& full,
                                      std::string_view target,
                                      const Execute& execute) const {
  Result result;
  result.minimal = full;

  // Reproduction check: the whole point of a minimizer is to preserve an
  // observed manifestation, so a full sequence that does not reproduce it
  // (flaky environment, wrong target class) is reported whole, not shrunk.
  result.runs = 1;
  if (execute(full) != target) {
    result.irreducible = true;
    return result;
  }
  result.reproduced = true;

  const auto probe = [&](const std::vector<std::size_t>& keep) {
    ++result.runs;
    return execute(subset(full, keep)) == target;
  };

  // ddmin over step indices: split the surviving set into n chunks, try
  // each chunk alone (reduce to subset), then each complement (reduce to
  // complement), else double the granularity. Terminates 1-minimal: no
  // single remaining step can be removed.
  std::vector<std::size_t> keep(full.steps.size());
  for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
  std::size_t n = 2;
  while (keep.size() >= 2) {
    const std::size_t chunk = (keep.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < keep.size() && !reduced;
         start += chunk) {
      const std::size_t end = std::min(start + chunk, keep.size());
      const std::vector<std::size_t> piece(
          keep.begin() + static_cast<std::ptrdiff_t>(start),
          keep.begin() + static_cast<std::ptrdiff_t>(end));
      if (probe(piece)) {
        keep = piece;
        n = 2;
        reduced = true;
      }
    }
    if (!reduced && n > 2) {
      for (std::size_t start = 0; start < keep.size() && !reduced;
           start += chunk) {
        const std::size_t end = std::min(start + chunk, keep.size());
        std::vector<std::size_t> complement;
        complement.reserve(keep.size() - (end - start));
        complement.insert(complement.end(), keep.begin(),
                          keep.begin() + static_cast<std::ptrdiff_t>(start));
        complement.insert(complement.end(),
                          keep.begin() + static_cast<std::ptrdiff_t>(end),
                          keep.end());
        if (probe(complement)) {
          keep = complement;
          n = std::max<std::size_t>(n - 1, 2);
          reduced = true;
        }
      }
    }
    if (!reduced) {
      if (n >= keep.size()) break;  // 1-minimal: singles were the chunks
      n = std::min(n * 2, keep.size());
    }
  }
  result.minimal = subset(full, keep);
  result.irreducible = true;

  // Parameter shrinking: halve each surviving step's count toward 1 while
  // the signature survives. Monotone halving (not full binary search)
  // keeps the probe count at most log2(count) per step.
  if (config_.shrink_params) {
    for (std::size_t i = 0; i < result.minimal.steps.size(); ++i) {
      while (result.minimal.steps[i].count > 1) {
        ScenarioSpec candidate = result.minimal;
        candidate.steps[i].count /= 2;
        ++result.runs;
        if (execute(candidate) != target) break;
        result.minimal = candidate;
      }
    }
  }
  return result;
}

}  // namespace hsfi::scenario
