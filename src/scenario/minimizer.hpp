// Automatic reproducer minimization: ddmin over a scenario's step sequence.
//
// When a scenario manifests, the interesting artifact is the *smallest*
// intervention sequence that still produces the same manifestation class —
// a minimal, replayable regression test. The Minimizer runs Zeller's
// delta-debugging (ddmin) over the ordered step list, then shrinks each
// surviving step's scalar parameter, re-executing every candidate through a
// caller-supplied Execute callback (the campaign stack typically backs it
// with snapshot-forked runs, so each probe costs one measurement window,
// not a full boot + mapping settle).
//
// The algorithm is pure: given a deterministic Execute, the result and the
// exact probe sequence are a function of the input spec alone — the
// property the determinism tests pin.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "scenario/scenario.hpp"

namespace hsfi::scenario {

class Minimizer {
 public:
  /// Executes a candidate scenario and returns its manifestation signature
  /// (e.g. the dominant non-masked manifestation class; "" = nothing
  /// manifested). Must be deterministic for minimization to converge.
  using Execute = std::function<std::string(const ScenarioSpec&)>;

  struct Config {
    /// After ddmin, try halving each surviving step's `count` toward 1.
    bool shrink_params = true;
  };

  struct Result {
    /// 1-minimal subsequence (params shrunk) reproducing `target`; the
    /// unmodified input when it never reproduced.
    ScenarioSpec minimal;
    /// Execute() invocations spent, including the initial reproduction
    /// check — the cost the ddmin-vs-naive bound is asserted against.
    std::size_t runs = 0;
    /// False when the full sequence itself failed to reproduce `target`.
    bool reproduced = false;
    /// True when no single step can be removed (1-minimal), or when the
    /// sequence never reproduced and is reported whole.
    bool irreducible = false;
  };

  Minimizer() = default;
  explicit Minimizer(Config config) : config_(config) {}

  /// Shrinks `full` to a locally minimal subsequence whose signature still
  /// equals `target`. Always executes the full sequence first; a mismatch
  /// there returns {full, 1, false, true} — the caller learns the scenario
  /// is not reproducing without any shrink probes wasted.
  [[nodiscard]] Result minimize(const ScenarioSpec& full,
                                std::string_view target,
                                const Execute& execute) const;

 private:
  Config config_{};
};

}  // namespace hsfi::scenario
