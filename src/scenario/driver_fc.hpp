// Executes scenario steps against the Fibre Channel protocol objects.
//
// Hook points (all protocol-layer, none touch the symbol stream):
//   kRrdyFlood       -> FcPort::inject_rrdy: `count` R_RDY ordered sets no
//     buffer backs, inflating the peer's BB credit so it overruns our
//     advertised receive buffers (lying flow control);
//   kDupSequence     -> one complete FC-2 sequence built by SequenceBuilder
//     and transmitted twice with the same SEQ_ID/OX_ID — every frame is
//     CRC-valid, the duplication is pure protocol misbehavior;
//   kReorderSequence -> a three-frame sequence with two continuation frames
//     swapped, tripping the reassembler's in-order SEQ_CNT check.
//
// Same lifecycle contract as MyrinetScenarioDriver: arm schedules one
// simulator event per step, firings record injections, disarm neutralizes
// pending events through the shared state block.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/analyzer.hpp"
#include "fc/port.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace hsfi::scenario {

/// Per-node protocol hooks (node i sits behind fabric-element port i).
struct FcNodeHooks {
  fc::FcPort* port = nullptr;
  std::uint32_t port_id = 0;  ///< the node's 24-bit N_Port identifier
};

class FcScenarioDriver {
 public:
  struct Params {
    /// Sequence chunking, matched to the testbed's frame_chunk so injected
    /// sequences are indistinguishable from workload traffic on the wire.
    std::size_t frame_chunk = 128;
    /// Workload payload shape; duplicated sequences deliberately invert the
    /// fill so the delivered duplicate fails the workload's payload check.
    std::size_t payload_size = 64;
    std::uint8_t payload_fill = 0x5A;
  };

  FcScenarioDriver(sim::Simulator& simulator, std::vector<FcNodeHooks> nodes,
                   Params params);
  ~FcScenarioDriver();

  FcScenarioDriver(const FcScenarioDriver&) = delete;
  FcScenarioDriver& operator=(const FcScenarioDriver&) = delete;

  /// Schedules every FC step of `spec` at now + step.at; firings bump
  /// fired() and record one injection each. `seed` reserves determinism
  /// headroom for randomized parameters; current kinds ignore it.
  void arm(const ScenarioSpec& spec, std::uint64_t seed,
           analysis::ManifestationAnalyzer& analyzer);

  /// Neutralizes not-yet-fired events. Idempotent.
  void disarm();

  [[nodiscard]] std::uint64_t fired() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace hsfi::scenario
